//! Blocking client for the CBES daemon: one request, one reply, over
//! newline-delimited JSON.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use cbes_cluster::load::LoadState;
use cbes_core::eval::Prediction;
use cbes_core::mapping::Mapping;
use cbes_obs::MetricsSnapshot;
use cbes_trace::AppProfile;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::protocol::{
    encode, InstanceInfo, MembershipReport, Request, RequestEnvelope, Response, ResponseEnvelope,
    SpanSnapshot, StatsReport,
};

/// A client-side failure: transport, protocol, or a server error reply.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or dropped.
    Io(std::io::Error),
    /// The server sent something that is not a valid reply, or a reply
    /// of an unexpected shape for the request.
    Protocol(String),
    /// The server answered with [`Response::Error`].
    Server {
        /// Machine-readable error class (see [`crate::protocol::error_kind`]).
        kind: String,
        /// Human-readable detail.
        message: String,
        /// Back-off hint from load-shedding replies (`0` = no hint).
        retry_after_ms: u64,
    },
}

impl ClientError {
    /// True for server replies that shed load (`overloaded`): the request
    /// never ran and an idempotent retry after the hinted back-off is safe.
    pub fn is_shed(&self) -> bool {
        matches!(self, ClientError::Server { kind, .. } if kind == crate::protocol::error_kind::OVERLOADED)
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Server { kind, message, .. } => {
                write!(f, "server error ({kind}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking connection to a CBES daemon. Requests are issued one at a
/// time; ids are assigned internally and checked against replies.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connect to a running daemon. No I/O deadline is set: a reply
    /// blocks indefinitely. Prefer [`Client::connect_timeout`] for
    /// anything interactive.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        Client::from_stream(stream)
    }

    /// Connect with a dial deadline and apply the same bound to every
    /// subsequent read and write, so a dead or wedged server surfaces as
    /// an I/O error instead of hanging the caller forever.
    pub fn connect_timeout<A: ToSocketAddrs>(
        addr: A,
        timeout: Duration,
    ) -> Result<Client, ClientError> {
        let mut last_err = None;
        for addr in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, timeout) {
                Ok(stream) => {
                    let mut client = Client::from_stream(stream)?;
                    client.set_io_timeout(Some(timeout))?;
                    return Ok(client);
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(ClientError::Io(last_err.unwrap_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to no socket addresses",
            )
        })))
    }

    fn from_stream(stream: TcpStream) -> Result<Client, ClientError> {
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
            next_id: 1,
        })
    }

    /// Bound every subsequent read and write on the connection; `None`
    /// removes the bound. A request that trips the deadline fails with
    /// [`ClientError::Io`] and the connection should be discarded (a
    /// late reply would desynchronise the stream).
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.writer.set_read_timeout(timeout)?;
        self.writer.set_write_timeout(timeout)?;
        Ok(())
    }

    /// Send one request and wait for its reply envelope. Error replies
    /// are returned as envelopes, not `Err` — use the typed helpers for
    /// automatic error conversion.
    ///
    /// When the calling thread is inside an open span (see
    /// [`cbes_obs::current_trace`]), the envelope carries that trace id
    /// and span id so the server joins the caller's trace; otherwise
    /// the envelope is untraced and the wire shape is unchanged.
    pub fn request(&mut self, request: Request) -> Result<ResponseEnvelope, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let envelope = match cbes_obs::current_trace() {
            Some((trace_id, parent_span)) => {
                RequestEnvelope::traced(id, request, trace_id, parent_span)
            }
            None => RequestEnvelope::new(id, request),
        };
        let mut line = encode(&envelope);
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;

        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            // A transport condition, not a protocol violation: the peer
            // hung up mid-conversation. Classified as I/O so retrying
            // callers know to reconnect.
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        let envelope: ResponseEnvelope = serde_json::from_str(reply.trim())
            .map_err(|e| ClientError::Protocol(format!("bad reply: {e}")))?;
        if envelope.id != id && envelope.id != 0 {
            return Err(ClientError::Protocol(format!(
                "reply id {} does not match request id {id}",
                envelope.id
            )));
        }
        Ok(envelope)
    }

    /// Send a request and surface error replies as [`ClientError::Server`].
    fn exchange(&mut self, request: Request) -> Result<Response, ClientError> {
        match self.request(request)?.response {
            Response::Error {
                kind,
                message,
                retry_after_ms,
            } => Err(ClientError::Server {
                kind,
                message,
                retry_after_ms,
            }),
            other => Ok(other),
        }
    }

    /// Register (or replace) an application profile.
    pub fn register_profile(&mut self, profile: AppProfile) -> Result<(), ClientError> {
        match self.exchange(Request::RegisterProfile { profile })? {
            Response::Registered { .. } => Ok(()),
            other => Err(unexpected("Registered", &other)),
        }
    }

    /// Predict execution times for candidate mappings; returns the
    /// snapshot epoch and one prediction per mapping, in request order.
    pub fn compare(
        &mut self,
        app: &str,
        mappings: &[Mapping],
    ) -> Result<(u64, Vec<Prediction>), ClientError> {
        let request = Request::Compare {
            app: app.to_string(),
            mappings: mappings.to_vec(),
        };
        match self.exchange(request)? {
            Response::Predictions { epoch, predictions } => Ok((epoch, predictions)),
            other => Err(unexpected("Predictions", &other)),
        }
    }

    /// Evaluate many candidate mappings in one round-trip; every
    /// prediction in the reply was computed against the single returned
    /// snapshot epoch. Equivalent to one `compare` per candidate at
    /// that epoch, amortised server-side.
    pub fn batch(
        &mut self,
        app: &str,
        mappings: &[Mapping],
    ) -> Result<(u64, Vec<Prediction>), ClientError> {
        let request = Request::Batch {
            app: app.to_string(),
            mappings: mappings.to_vec(),
        };
        match self.exchange(request)? {
            Response::Predictions { epoch, predictions } => Ok((epoch, predictions)),
            other => Err(unexpected("Predictions", &other)),
        }
    }

    /// The index and prediction of the fastest candidate mapping.
    pub fn best_of(
        &mut self,
        app: &str,
        mappings: &[Mapping],
    ) -> Result<(u64, usize, Prediction), ClientError> {
        let request = Request::BestOf {
            app: app.to_string(),
            mappings: mappings.to_vec(),
        };
        match self.exchange(request)? {
            Response::Best {
                epoch,
                index,
                prediction,
            } => Ok((epoch, index, prediction)),
            other => Err(unexpected("Best", &other)),
        }
    }

    /// Run the server-side scheduler over a node pool; returns the epoch,
    /// the chosen mapping, and its predicted time.
    pub fn schedule(
        &mut self,
        app: &str,
        pool: &[u32],
        iters: u32,
        seed: u64,
    ) -> Result<(u64, Mapping, f64), ClientError> {
        let request = Request::Schedule {
            app: app.to_string(),
            pool: pool.to_vec(),
            iters,
            seed,
        };
        match self.exchange(request)? {
            Response::Scheduled {
                epoch,
                mapping,
                predicted_time,
                ..
            } => Ok((epoch, mapping, predicted_time)),
            other => Err(unexpected("Scheduled", &other)),
        }
    }

    /// Feed one monitoring sweep; returns the new snapshot epoch.
    pub fn observe_load(&mut self, load: &LoadState) -> Result<u64, ClientError> {
        let request = Request::ObserveLoad { load: load.clone() };
        match self.exchange(request)? {
            Response::LoadObserved { epoch } => Ok(epoch),
            other => Err(unexpected("LoadObserved", &other)),
        }
    }

    /// Feed one *partial* monitoring sweep: the nodes in `silent`
    /// delivered no measurement and age toward `Suspect`/`Down` under the
    /// server's health policy. Returns the new snapshot epoch.
    pub fn observe_partial(
        &mut self,
        load: &LoadState,
        silent: &[u32],
    ) -> Result<u64, ClientError> {
        let request = Request::ObservePartial {
            load: load.clone(),
            silent: silent.to_vec(),
        };
        match self.exchange(request)? {
            Response::LoadObserved { epoch } => Ok(epoch),
            other => Err(unexpected("LoadObserved", &other)),
        }
    }

    /// Read the server's counters.
    pub fn stats(&mut self) -> Result<StatsReport, ClientError> {
        match self.exchange(Request::Stats)? {
            Response::Stats { stats } => Ok(stats),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Read the full metrics snapshot (counters, gauges, histograms).
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, ClientError> {
        match self.exchange(Request::Metrics)? {
            Response::Metrics { metrics } => Ok(metrics),
            other => Err(unexpected("Metrics", &other)),
        }
    }

    /// Ask which instance owns the `(cluster, app)` routing key; returns
    /// the key hash, the owning primary, and its failover replicas (empty
    /// when talking to a standalone daemon).
    pub fn route(
        &mut self,
        cluster: &str,
        app: &str,
    ) -> Result<(u64, InstanceInfo, Vec<InstanceInfo>), ClientError> {
        let request = Request::Route {
            cluster: cluster.to_string(),
            app: app.to_string(),
        };
        match self.exchange(request)? {
            Response::Routed {
                hash,
                primary,
                replicas,
            } => Ok((hash, primary, replicas)),
            other => Err(unexpected("Routed", &other)),
        }
    }

    /// Push a leader-published sweep at a fixed epoch (snapshot
    /// replication). Returns the receiver's epoch and whether the sweep
    /// was applied (`false` means the receiver was already newer).
    pub fn replicate(
        &mut self,
        epoch: u64,
        load: &LoadState,
        silent: &[u32],
    ) -> Result<(u64, bool), ClientError> {
        let request = Request::Replicate {
            epoch,
            load: load.clone(),
            silent: silent.to_vec(),
        };
        match self.exchange(request)? {
            Response::Replicated { epoch, applied } => Ok((epoch, applied)),
            other => Err(unexpected("Replicated", &other)),
        }
    }

    /// Read the serving tier's membership table (a standalone daemon
    /// reports a single-instance view of itself).
    pub fn membership(&mut self) -> Result<MembershipReport, ClientError> {
        match self.exchange(Request::Membership)? {
            Response::Membership { membership } => Ok(membership),
            other => Err(unexpected("Membership", &other)),
        }
    }

    /// Fetch every buffered span belonging to `trace_id` from the
    /// server's rings (a routed tier merges spans from every instance
    /// plus the router's own forwarding spans).
    pub fn trace(&mut self, trace_id: u64) -> Result<(u64, Vec<SpanSnapshot>), ClientError> {
        match self.exchange(Request::Trace { trace_id })? {
            Response::Traces { trace_id, spans } => Ok((trace_id, spans)),
            other => Err(unexpected("Traces", &other)),
        }
    }

    /// Force an unconditional flight-recorder dump; returns the dump
    /// file path and the number of events written (a routed tier dumps
    /// on every instance and reports the first reply).
    pub fn dump_flight(&mut self) -> Result<(String, u64), ClientError> {
        match self.exchange(Request::DumpFlight)? {
            Response::FlightDumped { path, events } => Ok((path, events)),
            other => Err(unexpected("FlightDumped", &other)),
        }
    }

    /// Stage a configuration artifact (validated and journalled, not
    /// yet activated). Returns `(version, state, epoch)` from the ack;
    /// `state` is `"staged"` on success.
    pub fn stage(&mut self, kind: &str, payload: &str) -> Result<(u64, String, u64), ClientError> {
        let request = Request::Stage {
            kind: kind.to_string(),
            payload: payload.to_string(),
        };
        match self.exchange(request)? {
            Response::ArtifactAck {
                version,
                state,
                epoch,
            } => Ok((version, state, epoch)),
            other => Err(unexpected("ArtifactAck", &other)),
        }
    }

    /// Activate the staged artifact under a soak (one epoch bump).
    pub fn apply(&mut self) -> Result<(u64, String, u64), ClientError> {
        match self.exchange(Request::Apply)? {
            Response::ArtifactAck {
                version,
                state,
                epoch,
            } => Ok((version, state, epoch)),
            other => Err(unexpected("ArtifactAck", &other)),
        }
    }

    /// Promote the soaking artifact to active.
    pub fn accept(&mut self) -> Result<(u64, String, u64), ClientError> {
        match self.exchange(Request::Accept)? {
            Response::ArtifactAck {
                version,
                state,
                epoch,
            } => Ok((version, state, epoch)),
            other => Err(unexpected("ArtifactAck", &other)),
        }
    }

    /// Abandon the soaking artifact and reinstate the previous
    /// configuration (one more epoch bump).
    pub fn rollback(&mut self, reason: &str) -> Result<(u64, String, u64), ClientError> {
        let request = Request::Rollback {
            reason: reason.to_string(),
        };
        match self.exchange(request)? {
            Response::ArtifactAck {
                version,
                state,
                epoch,
            } => Ok((version, state, epoch)),
            other => Err(unexpected("ArtifactAck", &other)),
        }
    }

    /// Read the artifact lifecycle state (tier-wide through a router:
    /// one entry per usable instance).
    pub fn artifact_status(&mut self) -> Result<cbes_reconfig::StatusReport, ClientError> {
        match self.exchange(Request::ArtifactStatus)? {
            Response::ArtifactStatus { status } => Ok(status),
            other => Err(unexpected("ArtifactStatus", &other)),
        }
    }

    /// Ask the server to drain and exit. The acknowledgement arrives
    /// before the drain completes.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.exchange(Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {wanted} reply, got {got:?}"))
}

/// Retry tuning for [`RetryingClient`]: exponential backoff with
/// deterministic jitter, bounded attempts.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`1` disables retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_delay: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_delay: Duration,
    /// Jitter seed, so backoff sequences are reproducible in tests.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `retry` (1-based), before the
    /// `retry_after_ms` hint is applied: `base · 2^(retry-1)`, capped at
    /// `max_delay`, jittered uniformly over ±50%. Public so operators
    /// (and tests) can inspect the delay envelope a policy produces.
    pub fn backoff(&self, retry: u32, rng: &mut StdRng) -> Duration {
        let base = self
            .base_delay
            .saturating_mul(1u32 << (retry - 1).min(16))
            .min(self.max_delay);
        let us = base.as_micros() as u64;
        if us == 0 {
            return Duration::ZERO;
        }
        // Uniform in [0.5, 1.5) × base.
        let jittered = us / 2 + rng.random_range(0..us.max(1));
        Duration::from_micros(jittered)
    }
}

/// A [`Client`] wrapper that reconnects and retries **idempotent**
/// requests over transient failures: connect/IO errors and load-shedding
/// (`overloaded`) replies, honouring the server's `retry_after_ms` hint.
///
/// Retries are opt-in by construction — plain [`Client`] never retries —
/// and only read-or-replayable actions are exposed here (`compare`,
/// `best_of`, `schedule` with a fixed seed, `stats`, `metrics`,
/// `register_profile`, which is a keyed upsert). Epoch-advancing sweeps
/// (`observe_load`) and `shutdown` are deliberately absent: replaying
/// them changes server state.
pub struct RetryingClient {
    addr: String,
    io_timeout: Duration,
    policy: RetryPolicy,
    rng: StdRng,
    inner: Option<Client>,
    retries: std::sync::Arc<cbes_obs::Counter>,
    giveups: std::sync::Arc<cbes_obs::Counter>,
}

impl RetryingClient {
    /// Build a retrying client for `addr`. The connection is dialled
    /// lazily on first use and re-dialled after any I/O failure.
    pub fn new(addr: impl Into<String>, io_timeout: Duration, policy: RetryPolicy) -> Self {
        let registry = cbes_obs::Registry::global();
        RetryingClient {
            addr: addr.into(),
            io_timeout,
            rng: StdRng::seed_from_u64(policy.seed),
            policy,
            inner: None,
            retries: registry.counter(cbes_obs::names::CLIENT_RETRIES),
            giveups: registry.counter(cbes_obs::names::CLIENT_RETRY_GIVEUPS),
        }
    }

    fn client(&mut self) -> Result<&mut Client, ClientError> {
        if self.inner.is_none() {
            self.inner = Some(Client::connect_timeout(
                self.addr.as_str(),
                self.io_timeout,
            )?);
        }
        Ok(self.inner.as_mut().expect("just connected"))
    }

    /// Run one idempotent request with retries. Transport errors discard
    /// the connection (a late reply would desynchronise the stream);
    /// shed replies keep it and honour the back-off hint.
    fn call<T>(
        &mut self,
        mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut retry = 0u32;
        loop {
            let result = match self.client() {
                Ok(client) => op(client),
                Err(e) => Err(e),
            };
            let err = match result {
                Ok(value) => return Ok(value),
                Err(e) => e,
            };
            let hint_ms = match &err {
                ClientError::Io(_) => {
                    self.inner = None;
                    0
                }
                ClientError::Server {
                    kind,
                    retry_after_ms,
                    ..
                } if kind == crate::protocol::error_kind::OVERLOADED
                    || kind == crate::protocol::error_kind::TIMEOUT =>
                {
                    // Shed or deadline-missed: the action is idempotent,
                    // so replaying after the hinted back-off is safe.
                    *retry_after_ms
                }
                _ => {
                    // Protocol and non-shed server errors are not
                    // transient; retrying replays a rejected request.
                    return Err(err);
                }
            };
            retry += 1;
            if retry >= self.policy.max_attempts {
                self.giveups.incr();
                return Err(err);
            }
            self.retries.incr();
            let backoff = self
                .policy
                .backoff(retry, &mut self.rng)
                .max(Duration::from_millis(hint_ms));
            if !backoff.is_zero() {
                std::thread::sleep(backoff);
            }
        }
    }

    /// [`Client::register_profile`], retried (registration is a keyed
    /// upsert, so replays converge).
    pub fn register_profile(&mut self, profile: &AppProfile) -> Result<(), ClientError> {
        self.call(|c| c.register_profile(profile.clone()))
    }

    /// [`Client::compare`], retried.
    pub fn compare(
        &mut self,
        app: &str,
        mappings: &[Mapping],
    ) -> Result<(u64, Vec<Prediction>), ClientError> {
        self.call(|c| c.compare(app, mappings))
    }

    /// [`Client::batch`], retried (a pure evaluation, replayable).
    pub fn batch(
        &mut self,
        app: &str,
        mappings: &[Mapping],
    ) -> Result<(u64, Vec<Prediction>), ClientError> {
        self.call(|c| c.batch(app, mappings))
    }

    /// [`Client::best_of`], retried.
    pub fn best_of(
        &mut self,
        app: &str,
        mappings: &[Mapping],
    ) -> Result<(u64, usize, Prediction), ClientError> {
        self.call(|c| c.best_of(app, mappings))
    }

    /// [`Client::schedule`], retried (the fixed seed makes the search
    /// replayable).
    pub fn schedule(
        &mut self,
        app: &str,
        pool: &[u32],
        iters: u32,
        seed: u64,
    ) -> Result<(u64, Mapping, f64), ClientError> {
        self.call(|c| c.schedule(app, pool, iters, seed))
    }

    /// [`Client::stats`], retried.
    pub fn stats(&mut self) -> Result<StatsReport, ClientError> {
        self.call(|c| c.stats())
    }

    /// [`Client::metrics`], retried.
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, ClientError> {
        self.call(|c| c.metrics())
    }

    /// [`Client::route`], retried (a pure placement read).
    pub fn route(
        &mut self,
        cluster: &str,
        app: &str,
    ) -> Result<(u64, InstanceInfo, Vec<InstanceInfo>), ClientError> {
        self.call(|c| c.route(cluster, app))
    }

    /// [`Client::replicate`], retried — safe despite advancing the
    /// epoch, because the receiver adopts a given epoch at most once;
    /// a replayed `Replicate` is acknowledged `applied: false`.
    pub fn replicate(
        &mut self,
        epoch: u64,
        load: &LoadState,
        silent: &[u32],
    ) -> Result<(u64, bool), ClientError> {
        self.call(|c| c.replicate(epoch, load, silent))
    }

    /// [`Client::membership`], retried (a read).
    pub fn membership(&mut self) -> Result<MembershipReport, ClientError> {
        self.call(|c| c.membership())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_respects_the_cap() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(100),
            seed: 1,
        };
        let mut rng = StdRng::seed_from_u64(policy.seed);
        for retry in 1..8 {
            let d = policy.backoff(retry, &mut rng);
            // Jitter spans [0.5, 1.5) × capped base.
            let base = (10u64 << (retry - 1)).min(100);
            assert!(
                d >= Duration::from_micros(base * 500),
                "retry {retry}: {d:?}"
            );
            assert!(
                d < Duration::from_micros(base * 1500),
                "retry {retry}: {d:?}"
            );
        }
    }

    #[test]
    fn backoff_is_deterministic_for_a_seed() {
        let policy = RetryPolicy::default();
        let mut a = StdRng::seed_from_u64(policy.seed);
        let mut b = StdRng::seed_from_u64(policy.seed);
        for retry in 1..5 {
            assert_eq!(policy.backoff(retry, &mut a), policy.backoff(retry, &mut b));
        }
    }

    #[test]
    fn shed_classification() {
        let shed = ClientError::Server {
            kind: crate::protocol::error_kind::OVERLOADED.into(),
            message: "queue full".into(),
            retry_after_ms: 25,
        };
        assert!(shed.is_shed());
        let service = ClientError::Server {
            kind: crate::protocol::error_kind::SERVICE.into(),
            message: "unknown app".into(),
            retry_after_ms: 0,
        };
        assert!(!service.is_shed());
    }
}
