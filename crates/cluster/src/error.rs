//! Error types for cluster construction and queries.

use crate::node::NodeId;
use crate::topology::SwitchId;
use std::fmt;

/// Errors raised while building or querying a [`crate::Cluster`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// A node referenced a switch id that was never declared.
    UnknownSwitch(SwitchId),
    /// A node id outside the cluster was used.
    UnknownNode(NodeId),
    /// A link referenced an undeclared switch.
    BadLink {
        /// One link endpoint.
        a: SwitchId,
        /// The other link endpoint.
        b: SwitchId,
    },
    /// The switch graph is disconnected: no path between the two switches.
    Unreachable {
        /// Source switch.
        from: SwitchId,
        /// Unreachable destination switch.
        to: SwitchId,
    },
    /// The cluster has no nodes.
    Empty,
    /// A physical parameter was non-positive (bandwidth, latency, speed...).
    NonPositiveParameter(&'static str),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::UnknownSwitch(s) => write!(f, "unknown switch {s}"),
            ClusterError::UnknownNode(n) => write!(f, "unknown node {n}"),
            ClusterError::BadLink { a, b } => {
                write!(f, "link references undeclared switch ({a} - {b})")
            }
            ClusterError::Unreachable { from, to } => {
                write!(f, "no path between switches {from} and {to}")
            }
            ClusterError::Empty => write!(f, "cluster has no nodes"),
            ClusterError::NonPositiveParameter(p) => {
                write!(f, "parameter `{p}` must be positive")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_are_informative() {
        let e = ClusterError::Unreachable {
            from: SwitchId(1),
            to: SwitchId(2),
        };
        assert!(e.to_string().contains("sw1"));
        assert!(e.to_string().contains("sw2"));
        assert!(ClusterError::Empty.to_string().contains("no nodes"));
        assert!(ClusterError::NonPositiveParameter("bandwidth")
            .to_string()
            .contains("bandwidth"));
    }
}
