//! Heterogeneous cluster modelling for CBES.
//!
//! This crate is the bottom substrate of the CBES reproduction. It models a
//! *federated cluster* in the sense of the paper: heterogeneous compute nodes
//! (different architectures, clock rates, CPU counts) attached to a switched
//! interconnect whose topology induces non-uniform inter-node latency.
//!
//! The two experimental platforms of the paper are provided as presets:
//!
//! * [`presets::centurion`] — the University of Virginia Centurion subset:
//!   32 Alpha 533 MHz + 96 dual Pentium-II 400 MHz nodes over eight 24-port
//!   100 Mb/s edge switches joined by a 1.2 Gb/s backbone.
//! * [`presets::orange_grove`] — the rewired Syracuse Orange Grove: 8 Alpha +
//!   8 SPARC + 12 dual-PII nodes over five 3Com and two DLink switches,
//!   emulating a federation of two elementary clusters over a thin link.
//!
//! Ground-truth end-to-end no-load latency is computed from the topology
//! ([`Cluster::no_load_latency`]); higher layers *calibrate* an empirical
//! model against it ([`LatencyProvider`] is the shared abstraction).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
pub mod builder;
pub mod error;
pub mod load;
pub mod node;
pub mod presets;
pub mod spec;
pub mod topology;

pub use arch::Architecture;
pub use builder::ClusterBuilder;
pub use error::ClusterError;
pub use node::{Node, NodeId};
pub use spec::ClusterSpec;
pub use topology::{Cluster, Link, PathInfo, Switch, SwitchId};

/// A source of end-to-end latency estimates between two cluster nodes for a
/// message of a given size, in seconds.
///
/// Implemented by [`Cluster`] itself (exact topological ground truth) and by
/// the calibrated latency model in `cbes-netmodel` (empirical, interpolated,
/// optionally load-adjusted). The CBES mapping-evaluation operation only ever
/// sees this trait, which is what lets the prediction differ honestly from
/// the simulated "measured" execution.
pub trait LatencyProvider {
    /// Estimated one-way end-to-end latency (seconds) for a `bytes`-byte
    /// message from node `a` to node `b`.
    fn latency(&self, a: NodeId, b: NodeId, bytes: u64) -> f64;
}

impl<T: LatencyProvider + ?Sized> LatencyProvider for &T {
    fn latency(&self, a: NodeId, b: NodeId, bytes: u64) -> f64 {
        (**self).latency(a, b, bytes)
    }
}
