//! Preset clusters reproducing the paper's two experimental platforms.
//!
//! Physical constants are tuned so the derived quantities the paper reports
//! hold on the models:
//!
//! * Centurion inter-node latency spread up to **≈13 %** (we get ≈11 %),
//! * Orange Grove spread up to **≈54 %** (we get ≈55 %),
//! * three distinct node speed classes on Orange Grove
//!   (Alpha 1.0 > Intel PII 0.85 > SPARC 0.65), producing the three LU
//!   execution-time zones of Figure 6.

use crate::arch::Architecture;
use crate::builder::ClusterBuilder;
use crate::topology::{Cluster, SwitchId};

/// Fast-ethernet NIC bandwidth (100 Mb/s) in bytes/second.
pub const FE_BW: f64 = 12.5e6;

/// Latency scale factor. The workload generators compress the paper's
/// minutes-long runs into a few *virtual seconds* by shrinking iteration
/// counts; to keep the ratio of per-message latency to per-message compute
/// interval — the quantity every mapping experiment exercises — faithful to
/// the real testbeds, all fixed latency constants are scaled up by the same
/// factor. Bandwidths are left physical. See DESIGN.md §2.
pub const LAT_SCALE: f64 = 50.0;

/// NIC endpoint latency in seconds (scaled).
pub const NIC_LAT: f64 = 35e-6 * LAT_SCALE;
/// 3Com 24-port switch forwarding latency (scaled).
pub const COM3_HOP: f64 = 5e-6 * LAT_SCALE;

/// Relative speed of an Alpha 533 MHz node (the reference).
pub const ALPHA_SPEED: f64 = 1.0;
/// Relative speed of a dual Pentium-II 400 MHz node (per CPU).
pub const PII_SPEED: f64 = 0.85;
/// Relative speed of a SPARC 500 MHz node.
pub const SPARC_SPEED: f64 = 0.65;

/// The experimental Centurion configuration (figure 3 of the paper):
/// 128 MPI nodes — 32 Alpha 533 MHz and 96 dual Intel PII 400 MHz — spread
/// over eight 24-port 100 Mb/s edge switches (16 nodes each) connected to a
/// 1.2 Gb/s backbone switch.
///
/// Node layout: switches 0–1 carry the Alphas, switches 2–7 the Intels.
pub fn centurion() -> Cluster {
    let mut b = ClusterBuilder::new("centurion");
    // Edge switches 0..8
    for i in 0..8 {
        b = b.switch(24, COM3_HOP, format!("3Com #{i:02}"));
    }
    // Backbone gigabit switch (id 8)
    b = b.switch(12, 2e-6 * LAT_SCALE, "3Com gigabit #00");
    for i in 0..8u32 {
        b = b.link(SwitchId(i), SwitchId(8), 150e6, 2e-6 * LAT_SCALE);
    }
    // 32 Alpha nodes on edge switches 0-1.
    for sw in 0..2u32 {
        b = b.nodes(
            16,
            Architecture::Alpha,
            533,
            1,
            ALPHA_SPEED,
            SwitchId(sw),
            FE_BW,
            NIC_LAT,
        );
    }
    // 96 dual-PII nodes on edge switches 2-7.
    for sw in 2..8u32 {
        b = b.nodes(
            16,
            Architecture::IntelPII,
            400,
            2,
            PII_SPEED,
            SwitchId(sw),
            FE_BW,
            NIC_LAT,
        );
    }
    b.build().expect("centurion preset must be valid")
}

/// The rewired Orange Grove configuration (figure 4 of the paper): a highly
/// heterogeneous 28-node cluster — 8 Alpha 533, 8 SPARC 500, 12 dual PII
/// 400 — whose topology emulates a federation of two elementary clusters
/// joined by a limited-capacity link.
///
/// Switch layout:
/// * `sw0` — two stacked 3Com switches acting as one 48-port switch
///   (sub-cluster 1 hub), carrying 4 Alpha and 6 Intel nodes,
/// * `sw1` — 3Com 24-port, carrying the other 4 Alpha nodes,
/// * `sw2` — 3Com 24-port, carrying the other 6 Intel nodes,
/// * `sw3` — 3Com 24-port (sub-cluster 2 hub),
/// * `sw4`, `sw5` — DLink 8-port switches, carrying 4 SPARC nodes each.
///
/// The `sw0 – sw3` federation link is the thin pipe (8.5 MB/s).
pub fn orange_grove() -> Cluster {
    ClusterBuilder::new("orange-grove")
        .switch(48, 12e-6 * LAT_SCALE, "3Com stacked 00+01")
        .switch(24, COM3_HOP, "3Com 02")
        .switch(24, COM3_HOP, "3Com 03")
        .switch(24, COM3_HOP, "3Com 04 (hub B)")
        .switch(8, 8e-6 * LAT_SCALE, "DLink 10")
        .switch(8, 8e-6 * LAT_SCALE, "DLink 12")
        .link(SwitchId(1), SwitchId(0), FE_BW, 10e-6 * LAT_SCALE)
        .link(SwitchId(2), SwitchId(0), FE_BW, 10e-6 * LAT_SCALE)
        // Limited-capacity federation link.
        .link(SwitchId(0), SwitchId(3), 8.5e6, 8e-6 * LAT_SCALE)
        .link(SwitchId(3), SwitchId(4), FE_BW, 4e-6 * LAT_SCALE)
        // DLink 12's uplink is a cheaper, slower cable (bandwidth
        // asymmetry within sub-cluster 2: bulk transfers crossing it pay
        // ~50% more serialisation, while small-message latency is equal).
        .link(SwitchId(3), SwitchId(5), 8e6, 4e-6 * LAT_SCALE)
        .nodes(
            4,
            Architecture::Alpha,
            533,
            1,
            ALPHA_SPEED,
            SwitchId(1),
            FE_BW,
            NIC_LAT,
        )
        .nodes(
            4,
            Architecture::Alpha,
            533,
            1,
            ALPHA_SPEED,
            SwitchId(0),
            FE_BW,
            NIC_LAT,
        )
        .nodes(
            6,
            Architecture::IntelPII,
            400,
            2,
            PII_SPEED,
            SwitchId(0),
            FE_BW,
            NIC_LAT,
        )
        .nodes(
            6,
            Architecture::IntelPII,
            400,
            2,
            PII_SPEED,
            SwitchId(2),
            FE_BW,
            NIC_LAT,
        )
        .nodes(
            4,
            Architecture::Sparc,
            500,
            1,
            SPARC_SPEED,
            SwitchId(4),
            FE_BW,
            NIC_LAT,
        )
        .nodes(
            4,
            Architecture::Sparc,
            500,
            1,
            SPARC_SPEED,
            SwitchId(5),
            FE_BW,
            NIC_LAT,
        )
        .build()
        .expect("orange grove preset must be valid")
}

/// A small two-switch, eight-node demo cluster used by examples and tests.
pub fn two_switch_demo() -> Cluster {
    ClusterBuilder::new("demo")
        .switch(24, COM3_HOP, "edge-0")
        .switch(24, COM3_HOP, "edge-1")
        .link(SwitchId(0), SwitchId(1), FE_BW, 4e-6 * LAT_SCALE)
        .nodes(
            4,
            Architecture::Alpha,
            533,
            1,
            ALPHA_SPEED,
            SwitchId(0),
            FE_BW,
            NIC_LAT,
        )
        .nodes(
            4,
            Architecture::IntelPII,
            400,
            2,
            PII_SPEED,
            SwitchId(1),
            FE_BW,
            NIC_LAT,
        )
        .build()
        .expect("demo preset must be valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    /// Representative message size for end-to-end latency benchmarks.
    const PROBE: u64 = 1024;

    #[test]
    fn centurion_composition_matches_paper() {
        let c = centurion();
        assert_eq!(c.len(), 128);
        assert_eq!(c.nodes_by_arch(Architecture::Alpha).len(), 32);
        assert_eq!(c.nodes_by_arch(Architecture::IntelPII).len(), 96);
        assert_eq!(c.switches().len(), 9);
        assert_eq!(c.links().len(), 8);
    }

    #[test]
    fn orange_grove_composition_matches_paper() {
        let c = orange_grove();
        assert_eq!(c.len(), 28);
        assert_eq!(c.nodes_by_arch(Architecture::Alpha).len(), 8);
        assert_eq!(c.nodes_by_arch(Architecture::Sparc).len(), 8);
        assert_eq!(c.nodes_by_arch(Architecture::IntelPII).len(), 12);
    }

    #[test]
    fn centurion_latency_spread_near_13_percent() {
        let spread = centurion().latency_spread(PROBE);
        assert!(
            (0.08..=0.16).contains(&spread),
            "centurion spread {spread} outside paper band (~13%)"
        );
    }

    #[test]
    fn orange_grove_latency_spread_near_54_percent() {
        let spread = orange_grove().latency_spread(PROBE);
        assert!(
            (0.45..=0.65).contains(&spread),
            "orange grove spread {spread} outside paper band (~54%)"
        );
    }

    #[test]
    fn orange_grove_has_three_speed_classes() {
        let c = orange_grove();
        let mut speeds: Vec<f64> = c.nodes().iter().map(|n| n.speed).collect();
        speeds.sort_by(|a, b| a.partial_cmp(b).unwrap());
        speeds.dedup();
        assert_eq!(speeds, vec![SPARC_SPEED, PII_SPEED, ALPHA_SPEED]);
    }

    #[test]
    fn federation_link_is_the_bottleneck() {
        let c = orange_grove();
        // Alpha node (sub-cluster 1) to SPARC node (sub-cluster 2).
        let alpha = c.nodes_by_arch(Architecture::Alpha)[0];
        let sparc = c.nodes_by_arch(Architecture::Sparc)[0];
        let p = c.path(alpha, sparc);
        assert!(p.bottleneck_bw < FE_BW, "thin link must limit bandwidth");
        // Two Alphas talk at full fast-ethernet speed.
        let alpha2 = c.nodes_by_arch(Architecture::Alpha)[1];
        assert_eq!(c.path(alpha, alpha2).bottleneck_bw, FE_BW);
    }

    #[test]
    fn centurion_same_switch_is_fastest() {
        let c = centurion();
        let same = c.no_load_latency(NodeId(0), NodeId(1), PROBE);
        let cross = c.no_load_latency(NodeId(0), NodeId(16), PROBE);
        assert!(same < cross);
    }

    #[test]
    fn all_preset_pairs_have_finite_latency() {
        for c in [centurion(), orange_grove(), two_switch_demo()] {
            for a in c.node_ids() {
                let b = NodeId((a.0 + 1) % c.len() as u32);
                let l = c.no_load_latency(a, b, PROBE);
                assert!(l.is_finite() && l > 0.0);
            }
        }
    }
}
