//! A serialisable cluster description, so users can define their own
//! federated clusters in JSON and feed them to the CLI and experiments.

use crate::arch::Architecture;
use crate::builder::ClusterBuilder;
use crate::error::ClusterError;
use crate::topology::{Cluster, SwitchId};
use serde::{Deserialize, Serialize};

/// One switch in a [`ClusterSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwitchSpec {
    /// Port count (descriptive).
    pub ports: u32,
    /// Per-hop forwarding latency, seconds.
    pub hop_latency: f64,
    /// Human-readable label.
    pub label: String,
}

/// One inter-switch link in a [`ClusterSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// First endpoint (index into `switches`).
    pub a: u32,
    /// Second endpoint (index into `switches`).
    pub b: u32,
    /// Bandwidth, bytes/second.
    pub bandwidth: f64,
    /// Setup latency, seconds.
    pub latency: f64,
}

/// A homogeneous group of nodes attached to one switch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeGroupSpec {
    /// How many identical nodes.
    pub count: u32,
    /// Architecture.
    pub arch: Architecture,
    /// Clock in MHz (descriptive).
    pub clock_mhz: u32,
    /// CPUs per node.
    pub cpus: u32,
    /// Relative speed (reference = 1.0).
    pub speed: f64,
    /// Switch the group hangs off (index into `switches`).
    pub switch: u32,
    /// NIC bandwidth, bytes/second.
    pub nic_bandwidth: f64,
    /// NIC latency, seconds.
    pub nic_latency: f64,
}

/// A complete, durable cluster description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Cluster name.
    pub name: String,
    /// Switches, in id order.
    pub switches: Vec<SwitchSpec>,
    /// Inter-switch links.
    pub links: Vec<LinkSpec>,
    /// Node groups (node ids are assigned in group order).
    pub groups: Vec<NodeGroupSpec>,
}

impl ClusterSpec {
    /// Build the cluster this spec describes.
    pub fn build(&self) -> Result<Cluster, ClusterError> {
        let mut b = ClusterBuilder::new(self.name.clone());
        for sw in &self.switches {
            b = b.switch(sw.ports, sw.hop_latency, sw.label.clone());
        }
        for l in &self.links {
            b = b.link(SwitchId(l.a), SwitchId(l.b), l.bandwidth, l.latency);
        }
        for g in &self.groups {
            b = b.nodes(
                g.count,
                g.arch,
                g.clock_mhz,
                g.cpus,
                g.speed,
                SwitchId(g.switch),
                g.nic_bandwidth,
                g.nic_latency,
            );
        }
        b.build()
    }

    /// Extract the spec of an existing cluster (adjacent identical nodes on
    /// the same switch collapse into one group). `spec.build()` of the
    /// result reproduces the cluster exactly.
    pub fn from_cluster(cluster: &Cluster) -> Self {
        let switches = cluster
            .switches()
            .iter()
            .map(|sw| SwitchSpec {
                ports: sw.ports,
                hop_latency: sw.hop_latency,
                label: sw.label.clone(),
            })
            .collect();
        let links = cluster
            .links()
            .iter()
            .map(|l| LinkSpec {
                a: l.a.0,
                b: l.b.0,
                bandwidth: l.bandwidth,
                latency: l.latency,
            })
            .collect();
        let mut groups: Vec<NodeGroupSpec> = Vec::new();
        for n in cluster.nodes() {
            let same = groups.last().is_some_and(|g: &NodeGroupSpec| {
                g.arch == n.arch
                    && g.clock_mhz == n.clock_mhz
                    && g.cpus == n.cpus
                    && g.speed == n.speed
                    && g.switch == n.switch.0
                    && g.nic_bandwidth == n.nic_bandwidth
                    && g.nic_latency == n.nic_latency
            });
            if same {
                groups.last_mut().expect("checked above").count += 1;
            } else {
                groups.push(NodeGroupSpec {
                    count: 1,
                    arch: n.arch,
                    clock_mhz: n.clock_mhz,
                    cpus: n.cpus,
                    speed: n.speed,
                    switch: n.switch.0,
                    nic_bandwidth: n.nic_bandwidth,
                    nic_latency: n.nic_latency,
                });
            }
        }
        ClusterSpec {
            name: cluster.name().to_string(),
            switches,
            links,
            groups,
        }
    }

    /// Serialise to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serialisation cannot fail")
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use crate::presets::{centurion, orange_grove, two_switch_demo};

    #[test]
    fn spec_roundtrips_every_preset() {
        for cluster in [centurion(), orange_grove(), two_switch_demo()] {
            let spec = ClusterSpec::from_cluster(&cluster);
            let rebuilt = spec.build().expect("spec must rebuild");
            assert_eq!(rebuilt.len(), cluster.len(), "{}", cluster.name());
            assert_eq!(rebuilt.switches().len(), cluster.switches().len());
            assert_eq!(rebuilt.links().len(), cluster.links().len());
            // Same topology: identical pairwise latencies.
            for a in cluster.node_ids() {
                let b = NodeId((a.0 + 3) % cluster.len() as u32);
                if a == b {
                    continue;
                }
                assert_eq!(
                    rebuilt.no_load_latency(a, b, 4096),
                    cluster.no_load_latency(a, b, 4096)
                );
            }
        }
    }

    #[test]
    fn json_roundtrip_preserves_spec() {
        let spec = ClusterSpec::from_cluster(&orange_grove());
        let back = ClusterSpec::from_json(&spec.to_json()).unwrap();
        // Float text formatting may shift the last ULP; require a
        // serialisation fixpoint and semantically equivalent topology.
        assert_eq!(
            back.to_json(),
            ClusterSpec::from_json(&back.to_json()).unwrap().to_json()
        );
        assert_eq!(back.name, spec.name);
        assert_eq!(back.switches.len(), spec.switches.len());
        assert_eq!(back.groups, spec.groups);
        let a = spec.build().unwrap();
        let b = back.build().unwrap();
        for x in a.node_ids() {
            let y = NodeId((x.0 + 5) % a.len() as u32);
            if x == y {
                continue;
            }
            let la = a.no_load_latency(x, y, 2048);
            let lb = b.no_load_latency(x, y, 2048);
            assert!((la - lb).abs() / la < 1e-12, "{x}->{y}: {la} vs {lb}");
        }
    }

    #[test]
    fn groups_collapse_identical_neighbours() {
        let spec = ClusterSpec::from_cluster(&two_switch_demo());
        // 4 Alphas on sw0 + 4 Intels on sw1 -> exactly two groups.
        assert_eq!(spec.groups.len(), 2);
        assert_eq!(spec.groups[0].count, 4);
        assert_eq!(spec.groups[1].count, 4);
    }

    #[test]
    fn invalid_spec_is_rejected_at_build() {
        let mut spec = ClusterSpec::from_cluster(&two_switch_demo());
        spec.groups[0].switch = 99;
        assert!(spec.build().is_err());
    }
}
