//! Hardware architectures present in the modelled clusters.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A node hardware architecture.
///
/// The paper's clusters mix Alpha, SPARC and Intel Pentium-II nodes; `Other`
/// leaves room for user-defined platforms without changing the enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Architecture {
    /// DEC Alpha (e.g. 533 MHz single-CPU nodes, Alpha Linux).
    Alpha,
    /// Intel Pentium II (e.g. dual 400 MHz nodes, x86 Linux).
    IntelPII,
    /// Sun SPARC (e.g. 500 MHz single-CPU nodes, Solaris).
    Sparc,
    /// Any other architecture, tagged with a small user-chosen id.
    Other(u8),
}

impl Architecture {
    /// Short human-readable label, matching the paper's A/I/S shorthand.
    pub fn label(&self) -> &'static str {
        match self {
            Architecture::Alpha => "A",
            Architecture::IntelPII => "I",
            Architecture::Sparc => "S",
            Architecture::Other(_) => "O",
        }
    }

    /// Full descriptive name.
    pub fn name(&self) -> &'static str {
        match self {
            Architecture::Alpha => "Alpha",
            Architecture::IntelPII => "Intel Pentium II",
            Architecture::Sparc => "SPARC",
            Architecture::Other(_) => "Other",
        }
    }

    /// All well-known architectures (excludes `Other`).
    pub fn known() -> [Architecture; 3] {
        [
            Architecture::Alpha,
            Architecture::IntelPII,
            Architecture::Sparc,
        ]
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Architecture::Other(id) => write!(f, "Other({id})"),
            a => f.write_str(a.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct_for_known_archs() {
        let labels: Vec<_> = Architecture::known().iter().map(|a| a.label()).collect();
        assert_eq!(labels, vec!["A", "I", "S"]);
    }

    #[test]
    fn display_includes_other_id() {
        assert_eq!(Architecture::Other(3).to_string(), "Other(3)");
        assert_eq!(Architecture::Alpha.to_string(), "Alpha");
    }

    #[test]
    fn architectures_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let set: BTreeSet<_> = [
            Architecture::Sparc,
            Architecture::Alpha,
            Architecture::Alpha,
            Architecture::Other(1),
        ]
        .into_iter()
        .collect();
        assert_eq!(set.len(), 3);
    }
}
