//! Compute nodes.

use crate::arch::Architecture;
use crate::topology::SwitchId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a compute node within a [`crate::Cluster`].
///
/// Node ids are dense indices assigned in insertion order by the builder.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a usable array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A compute node: architecture, clock, CPU count, relative speed, and its
/// attachment point (switch + NIC characteristics).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Dense node identifier.
    pub id: NodeId,
    /// Hardware architecture.
    pub arch: Architecture,
    /// Nominal clock frequency in MHz (descriptive only; performance is
    /// captured by [`Node::speed`]).
    pub clock_mhz: u32,
    /// Number of CPUs. Multiple application processes can share a node; the
    /// simulator time-shares the CPUs among them.
    pub cpus: u32,
    /// Relative compute speed of one CPU of this node; the reference
    /// architecture (Alpha 533) is 1.0. Used as `Speed_j` in paper eq. 5.
    pub speed: f64,
    /// Switch this node's NIC is cabled to.
    pub switch: SwitchId,
    /// NIC bandwidth in bytes/second.
    pub nic_bandwidth: f64,
    /// NIC send/receive latency in seconds (one endpoint's share of the
    /// no-load end-to-end latency).
    pub nic_latency: f64,
}

impl Node {
    /// Seconds needed on this node to execute work that takes `ref_seconds`
    /// on the reference (speed 1.0) architecture, ignoring load.
    #[inline]
    pub fn compute_time(&self, ref_seconds: f64) -> f64 {
        ref_seconds / self.speed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(speed: f64) -> Node {
        Node {
            id: NodeId(0),
            arch: Architecture::Alpha,
            clock_mhz: 533,
            cpus: 1,
            speed,
            switch: SwitchId(0),
            nic_bandwidth: 12.5e6,
            nic_latency: 35e-6,
        }
    }

    #[test]
    fn compute_time_scales_inversely_with_speed() {
        assert_eq!(node(1.0).compute_time(2.0), 2.0);
        assert!((node(0.5).compute_time(2.0) - 4.0).abs() < 1e-12);
        assert!((node(2.0).compute_time(2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn node_id_display_and_index() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(NodeId(7).index(), 7);
    }
}
