//! Switched-network topology: switches, links, routing, and ground-truth
//! no-load end-to-end latency.

use crate::arch::Architecture;
use crate::error::ClusterError;
use crate::node::{Node, NodeId};
use crate::LatencyProvider;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Identifier of a switch within a [`Cluster`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SwitchId(pub u32);

impl SwitchId {
    /// The id as a usable array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sw{}", self.0)
    }
}

/// A network switch. Forwarding through a switch costs [`Switch::hop_latency`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Switch {
    /// Dense switch identifier.
    pub id: SwitchId,
    /// Number of ports (descriptive; not enforced).
    pub ports: u32,
    /// Per-hop forwarding latency in seconds.
    pub hop_latency: f64,
    /// Human-readable label, e.g. `"3Com #05"`.
    pub label: String,
}

/// A bidirectional inter-switch link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// One endpoint switch.
    pub a: SwitchId,
    /// The other endpoint switch.
    pub b: SwitchId,
    /// Link bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Link propagation/serialisation setup latency in seconds.
    pub latency: f64,
}

/// Pre-computed routing information for a pair of nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct PathInfo {
    /// Fixed latency component: both NICs, every switch hop, every link setup.
    pub base_latency: f64,
    /// Bottleneck bandwidth along the path (min of both NICs and all links),
    /// in bytes/second.
    pub bottleneck_bw: f64,
    /// Number of switches traversed.
    pub switch_hops: u32,
    /// Indices (into [`Cluster::links`]) of the inter-switch links used, in
    /// path order. Used by the simulator for link-contention accounting.
    pub link_indices: Vec<u32>,
}

impl PathInfo {
    /// No-load end-to-end latency of a `bytes`-byte message over this path:
    /// fixed base latency plus serialisation at the bottleneck bandwidth.
    #[inline]
    pub fn latency(&self, bytes: u64) -> f64 {
        self.base_latency + bytes as f64 / self.bottleneck_bw
    }
}

/// An immutable heterogeneous cluster: nodes attached to a connected graph of
/// switches. Built via [`crate::ClusterBuilder`]; all-pairs switch routes are
/// pre-computed at construction time.
#[derive(Debug, Clone)]
pub struct Cluster {
    pub(crate) name: String,
    pub(crate) nodes: Vec<Node>,
    pub(crate) switches: Vec<Switch>,
    pub(crate) links: Vec<Link>,
    /// `routes[a * S + b]` = (link index sequence) between switches a and b.
    pub(crate) routes: Vec<Vec<u32>>,
}

impl Cluster {
    /// Cluster name (e.g. `"centurion"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the cluster has no nodes (never the case for built clusters).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All nodes, indexed by `NodeId`.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All switches, indexed by `SwitchId`.
    pub fn switches(&self) -> &[Switch] {
        &self.switches
    }

    /// All inter-switch links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The node with the given id.
    ///
    /// # Panics
    /// Panics if the id is out of range (programmer error: node ids are only
    /// created by this crate or validated at API boundaries).
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Checked lookup of a node.
    pub fn try_node(&self, id: NodeId) -> Result<&Node, ClusterError> {
        self.nodes
            .get(id.index())
            .ok_or(ClusterError::UnknownNode(id))
    }

    /// Iterator over all node ids in order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Ids of all nodes of the given architecture.
    pub fn nodes_by_arch(&self, arch: Architecture) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.arch == arch)
            .map(|n| n.id)
            .collect()
    }

    /// Ids of all nodes attached to the given switch.
    pub fn nodes_on_switch(&self, sw: SwitchId) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.switch == sw)
            .map(|n| n.id)
            .collect()
    }

    /// True when both nodes hang off the same switch.
    pub fn same_switch(&self, a: NodeId, b: NodeId) -> bool {
        self.node(a).switch == self.node(b).switch
    }

    /// Routing information between two (distinct) nodes.
    ///
    /// For `a == b` (intra-node communication) a degenerate path with a tiny
    /// loopback latency and very high bandwidth is returned.
    pub fn path(&self, a: NodeId, b: NodeId) -> PathInfo {
        if a == b {
            return PathInfo {
                base_latency: 1e-6,
                bottleneck_bw: 1e9,
                switch_hops: 0,
                link_indices: Vec::new(),
            };
        }
        let na = self.node(a);
        let nb = self.node(b);
        let s = self.switches.len();
        let route = &self.routes[na.switch.index() * s + nb.switch.index()];

        let mut base = na.nic_latency + nb.nic_latency;
        let mut bw = na.nic_bandwidth.min(nb.nic_bandwidth);
        // Every switch on the path forwards once. The path visits
        // `route.len() + 1` switches (endpoints' switches included).
        base += self.switches[na.switch.index()].hop_latency;
        let mut cur = na.switch;
        for &li in route {
            let link = &self.links[li as usize];
            base += link.latency;
            bw = bw.min(link.bandwidth);
            cur = if link.a == cur { link.b } else { link.a };
            base += self.switches[cur.index()].hop_latency;
        }
        debug_assert_eq!(cur, nb.switch, "route must terminate at b's switch");
        PathInfo {
            base_latency: base,
            bottleneck_bw: bw,
            switch_hops: route.len() as u32 + 1,
            link_indices: route.clone(),
        }
    }

    /// Ground-truth no-load end-to-end latency (seconds) between two nodes
    /// for a message of `bytes` bytes.
    pub fn no_load_latency(&self, a: NodeId, b: NodeId, bytes: u64) -> f64 {
        self.path(a, b).latency(bytes)
    }

    /// Maximum over minimum pairwise no-load latency at a representative
    /// message size — the "latency spread" figure the paper quotes (§6):
    /// up to ~13 % for Centurion, up to ~54 % for Orange Grove.
    pub fn latency_spread(&self, bytes: u64) -> f64 {
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        for a in self.node_ids() {
            for b in self.node_ids() {
                if a == b {
                    continue;
                }
                let l = self.no_load_latency(a, b, bytes);
                min = min.min(l);
                max = max.max(l);
            }
        }
        if min.is_finite() && min > 0.0 {
            max / min - 1.0
        } else {
            0.0
        }
    }

    /// Render the topology as a Graphviz DOT document: switches as boxes,
    /// nodes as ellipses grouped per switch (architecture-labelled), links
    /// with bandwidth/latency annotations.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "graph \"{}\" {{", self.name);
        let _ = writeln!(out, "  layout=neato; overlap=false;");
        for sw in &self.switches {
            let _ = writeln!(out, "  sw{} [shape=box,label=\"{}\"];", sw.id.0, sw.label);
        }
        for n in &self.nodes {
            let _ = writeln!(
                out,
                "  n{} [label=\"n{} ({})\"];",
                n.id.0,
                n.id.0,
                n.arch.label()
            );
            let _ = writeln!(out, "  n{} -- sw{};", n.id.0, n.switch.0);
        }
        for l in &self.links {
            let _ = writeln!(
                out,
                "  sw{} -- sw{} [label=\"{:.0} MB/s, {:.1} ms\"];",
                l.a.0,
                l.b.0,
                l.bandwidth / 1e6,
                l.latency * 1e3
            );
        }
        out.push_str("}\n");
        out
    }

    /// Breadth-first all-pairs routes over the switch graph.
    pub(crate) fn compute_routes(
        switches: &[Switch],
        links: &[Link],
    ) -> Result<Vec<Vec<u32>>, ClusterError> {
        let s = switches.len();
        let mut adj: Vec<Vec<(usize, u32)>> = vec![Vec::new(); s];
        for (li, l) in links.iter().enumerate() {
            if l.a.index() >= s || l.b.index() >= s {
                return Err(ClusterError::BadLink { a: l.a, b: l.b });
            }
            adj[l.a.index()].push((l.b.index(), li as u32));
            adj[l.b.index()].push((l.a.index(), li as u32));
        }
        let mut routes = vec![Vec::new(); s * s];
        for src in 0..s {
            let mut prev: Vec<Option<(usize, u32)>> = vec![None; s];
            let mut seen = vec![false; s];
            seen[src] = true;
            let mut q = VecDeque::new();
            q.push_back(src);
            while let Some(u) = q.pop_front() {
                for &(v, li) in &adj[u] {
                    if !seen[v] {
                        seen[v] = true;
                        prev[v] = Some((u, li));
                        q.push_back(v);
                    }
                }
            }
            for dst in 0..s {
                if dst == src {
                    continue;
                }
                if !seen[dst] {
                    return Err(ClusterError::Unreachable {
                        from: SwitchId(src as u32),
                        to: SwitchId(dst as u32),
                    });
                }
                let mut path = Vec::new();
                let mut cur = dst;
                while cur != src {
                    let (p, li) = prev[cur].expect("seen node must have prev");
                    path.push(li);
                    cur = p;
                }
                path.reverse();
                routes[src * s + dst] = path;
            }
        }
        Ok(routes)
    }
}

impl LatencyProvider for Cluster {
    fn latency(&self, a: NodeId, b: NodeId, bytes: u64) -> f64 {
        self.no_load_latency(a, b, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ClusterBuilder;

    fn two_switch() -> Cluster {
        ClusterBuilder::new("t")
            .switch(24, 5e-6, "s0")
            .switch(24, 5e-6, "s1")
            .link(SwitchId(0), SwitchId(1), 12.5e6, 4e-6)
            .nodes(
                2,
                Architecture::Alpha,
                533,
                1,
                1.0,
                SwitchId(0),
                12.5e6,
                35e-6,
            )
            .nodes(
                2,
                Architecture::IntelPII,
                400,
                2,
                0.85,
                SwitchId(1),
                12.5e6,
                35e-6,
            )
            .build()
            .unwrap()
    }

    #[test]
    fn same_switch_latency_is_lower_than_cross_switch() {
        let c = two_switch();
        let same = c.no_load_latency(NodeId(0), NodeId(1), 1024);
        let cross = c.no_load_latency(NodeId(0), NodeId(2), 1024);
        assert!(same < cross, "same={same} cross={cross}");
    }

    #[test]
    fn latency_is_symmetric_for_symmetric_nics() {
        let c = two_switch();
        for &(a, b) in &[(0, 1), (0, 2), (1, 3)] {
            let ab = c.no_load_latency(NodeId(a), NodeId(b), 4096);
            let ba = c.no_load_latency(NodeId(b), NodeId(a), 4096);
            assert!((ab - ba).abs() < 1e-15);
        }
    }

    #[test]
    fn latency_grows_linearly_with_size_beyond_base() {
        let c = two_switch();
        let l1 = c.no_load_latency(NodeId(0), NodeId(2), 0);
        let l2 = c.no_load_latency(NodeId(0), NodeId(2), 12_500_000);
        // 12.5 MB at 12.5 MB/s = 1 second of serialisation.
        assert!((l2 - l1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn same_switch_detection() {
        let c = two_switch();
        assert!(c.same_switch(NodeId(0), NodeId(1)));
        assert!(!c.same_switch(NodeId(0), NodeId(2)));
    }

    #[test]
    fn self_path_is_loopback() {
        let c = two_switch();
        let p = c.path(NodeId(1), NodeId(1));
        assert!(p.latency(1024) < 1e-4);
        assert_eq!(p.switch_hops, 0);
    }

    #[test]
    fn nodes_by_arch_and_switch() {
        let c = two_switch();
        assert_eq!(c.nodes_by_arch(Architecture::Alpha).len(), 2);
        assert_eq!(c.nodes_by_arch(Architecture::Sparc).len(), 0);
        assert_eq!(c.nodes_on_switch(SwitchId(1)).len(), 2);
    }

    #[test]
    fn path_counts_switch_hops() {
        let c = two_switch();
        assert_eq!(c.path(NodeId(0), NodeId(1)).switch_hops, 1);
        assert_eq!(c.path(NodeId(0), NodeId(2)).switch_hops, 2);
        assert_eq!(c.path(NodeId(0), NodeId(2)).link_indices, vec![0]);
    }

    #[test]
    fn disconnected_graph_is_rejected() {
        let err = ClusterBuilder::new("d")
            .switch(8, 5e-6, "a")
            .switch(8, 5e-6, "b")
            .nodes(
                1,
                Architecture::Alpha,
                533,
                1,
                1.0,
                SwitchId(0),
                12.5e6,
                35e-6,
            )
            .nodes(
                1,
                Architecture::Alpha,
                533,
                1,
                1.0,
                SwitchId(1),
                12.5e6,
                35e-6,
            )
            .build()
            .unwrap_err();
        assert!(matches!(err, ClusterError::Unreachable { .. }));
    }

    mod properties {
        use super::*;
        use crate::presets::{centurion, orange_grove};
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// Paths are symmetric when both endpoints have identical NICs
            /// (all presets do), and the bottleneck bandwidth never exceeds
            /// either NIC's.
            #[test]
            fn path_symmetry_and_bottleneck(a in 0u32..28, b in 0u32..28) {
                prop_assume!(a != b);
                let c = orange_grove();
                let pa = c.path(NodeId(a), NodeId(b));
                let pb = c.path(NodeId(b), NodeId(a));
                prop_assert!((pa.base_latency - pb.base_latency).abs() < 1e-15);
                prop_assert!((pa.bottleneck_bw - pb.bottleneck_bw).abs() < 1e-9);
                prop_assert!(pa.bottleneck_bw <= c.node(NodeId(a)).nic_bandwidth);
                prop_assert!(pa.bottleneck_bw <= c.node(NodeId(b)).nic_bandwidth);
                prop_assert!(pa.switch_hops >= 1);
            }

            /// The end-to-end latency is strictly increasing in message size
            /// and strictly positive, on the big preset.
            #[test]
            fn latency_monotone_in_size(a in 0u32..128, b in 0u32..128, s in 0u64..1_000_000) {
                prop_assume!(a != b);
                let c = centurion();
                let l0 = c.no_load_latency(NodeId(a), NodeId(b), s);
                let l1 = c.no_load_latency(NodeId(a), NodeId(b), s + 1024);
                prop_assert!(l0 > 0.0);
                prop_assert!(l1 > l0);
            }
        }
    }

    #[test]
    fn dot_export_covers_all_elements() {
        let c = two_switch();
        let dot = c.to_dot();
        assert!(dot.starts_with("graph"));
        for i in 0..c.len() {
            assert!(dot.contains(&format!("n{i} ")), "node {i} missing");
        }
        assert!(dot.contains("sw0 [shape=box"));
        assert!(dot.contains("sw0 -- sw1") || dot.contains("sw1 -- sw0"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn latency_spread_positive_for_heterogeneous_topology() {
        let c = two_switch();
        assert!(c.latency_spread(1024) > 0.0);
    }
}
