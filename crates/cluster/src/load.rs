//! Background resource load on cluster nodes.
//!
//! The paper's monitoring subsystem periodically measures, per node, the CPU
//! availability (`ACPU_j`, 0–100 %) and the NIC load. [`LoadState`] is the
//! instantaneous ground truth the simulator executes against and the monitor
//! samples; [`LoadTimeline`] describes how that ground truth evolves over
//! time (used by the load-sensitivity experiment E3 and the forecaster
//! ablation).

use crate::node::NodeId;
use serde::{Deserialize, Serialize};

/// Instantaneous background load of every node in a cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadState {
    /// Per-node CPU availability in `(0, 1]` (paper's `ACPU_j / 100`).
    cpu_avail: Vec<f64>,
    /// Per-node NIC utilisation by background traffic in `[0, 1)`.
    nic_load: Vec<f64>,
}

impl LoadState {
    /// A fully idle cluster of `n` nodes (availability 1.0 everywhere).
    pub fn idle(n: usize) -> Self {
        LoadState {
            cpu_avail: vec![1.0; n],
            nic_load: vec![0.0; n],
        }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.cpu_avail.len()
    }

    /// True when covering zero nodes.
    pub fn is_empty(&self) -> bool {
        self.cpu_avail.is_empty()
    }

    /// CPU availability of `node`, clamped into `(0, 1]`.
    #[inline]
    pub fn cpu_avail(&self, node: NodeId) -> f64 {
        self.cpu_avail[node.index()]
    }

    /// NIC background utilisation of `node` in `[0, 1)`.
    #[inline]
    pub fn nic_load(&self, node: NodeId) -> f64 {
        self.nic_load[node.index()]
    }

    /// Set CPU availability of `node` (clamped to `[0.01, 1.0]` — a node is
    /// never completely unavailable, matching the paper's 0–100 % scale).
    pub fn set_cpu_avail(&mut self, node: NodeId, avail: f64) {
        self.cpu_avail[node.index()] = avail.clamp(0.01, 1.0);
    }

    /// Set NIC background utilisation of `node` (clamped to `[0.0, 0.99]`).
    pub fn set_nic_load(&mut self, node: NodeId, load: f64) {
        self.nic_load[node.index()] = load.clamp(0.0, 0.99);
    }

    /// Apply a uniform CPU availability to every node.
    pub fn with_uniform_cpu(mut self, avail: f64) -> Self {
        for v in &mut self.cpu_avail {
            *v = avail.clamp(0.01, 1.0);
        }
        self
    }
}

/// A deterministic, piecewise description of how one node's load evolves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LoadPattern {
    /// Constant CPU availability.
    Constant(f64),
    /// Availability `before` until `at` seconds, then `after` (the E3
    /// "background load change" pattern).
    Step {
        /// Time of the change, seconds.
        at: f64,
        /// Availability before the change.
        before: f64,
        /// Availability after the change.
        after: f64,
    },
    /// Linear drift from `from` to `to` over `[0, duration]`, constant after.
    Drift {
        /// Availability at t = 0.
        from: f64,
        /// Availability at t = `duration` and beyond.
        to: f64,
        /// Drift duration, seconds.
        duration: f64,
    },
    /// Availability `base`, dropping to `depth` during periodic spikes of
    /// length `width` every `period` seconds (short transient loads the
    /// paper found tolerable).
    Spikes {
        /// Availability between spikes.
        base: f64,
        /// Availability during a spike.
        depth: f64,
        /// Spike period, seconds.
        period: f64,
        /// Spike width, seconds.
        width: f64,
    },
}

impl LoadPattern {
    /// CPU availability at absolute time `t`.
    pub fn at(&self, t: f64) -> f64 {
        let v = match *self {
            LoadPattern::Constant(a) => a,
            LoadPattern::Step { at, before, after } => {
                if t < at {
                    before
                } else {
                    after
                }
            }
            LoadPattern::Drift { from, to, duration } => {
                if duration <= 0.0 || t >= duration {
                    to
                } else {
                    from + (to - from) * (t / duration)
                }
            }
            LoadPattern::Spikes {
                base,
                depth,
                period,
                width,
            } => {
                if period <= 0.0 {
                    base
                } else if t.rem_euclid(period) < width {
                    depth
                } else {
                    base
                }
            }
        };
        v.clamp(0.01, 1.0)
    }
}

/// Time-varying cluster load: one [`LoadPattern`] per node (default:
/// constant full availability).
#[derive(Debug, Clone, Default)]
pub struct LoadTimeline {
    patterns: Vec<(NodeId, LoadPattern)>,
    n: usize,
}

impl LoadTimeline {
    /// An idle timeline over `n` nodes.
    pub fn idle(n: usize) -> Self {
        LoadTimeline {
            patterns: Vec::new(),
            n,
        }
    }

    /// Override the pattern of one node.
    pub fn with(mut self, node: NodeId, pattern: LoadPattern) -> Self {
        self.patterns.retain(|(id, _)| *id != node);
        self.patterns.push((node, pattern));
        self
    }

    /// Materialise the instantaneous [`LoadState`] at time `t`.
    pub fn sample(&self, t: f64) -> LoadState {
        let mut s = LoadState::idle(self.n);
        for (id, p) in &self.patterns {
            s.set_cpu_avail(*id, p.at(t));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_state_is_fully_available() {
        let s = LoadState::idle(4);
        assert_eq!(s.len(), 4);
        for i in 0..4 {
            assert_eq!(s.cpu_avail(NodeId(i)), 1.0);
            assert_eq!(s.nic_load(NodeId(i)), 0.0);
        }
    }

    #[test]
    fn setters_clamp() {
        let mut s = LoadState::idle(1);
        s.set_cpu_avail(NodeId(0), -3.0);
        assert_eq!(s.cpu_avail(NodeId(0)), 0.01);
        s.set_cpu_avail(NodeId(0), 2.0);
        assert_eq!(s.cpu_avail(NodeId(0)), 1.0);
        s.set_nic_load(NodeId(0), 5.0);
        assert_eq!(s.nic_load(NodeId(0)), 0.99);
    }

    #[test]
    fn step_pattern_switches_at_time() {
        let p = LoadPattern::Step {
            at: 10.0,
            before: 1.0,
            after: 0.5,
        };
        assert_eq!(p.at(0.0), 1.0);
        assert_eq!(p.at(9.999), 1.0);
        assert_eq!(p.at(10.0), 0.5);
    }

    #[test]
    fn drift_pattern_interpolates() {
        let p = LoadPattern::Drift {
            from: 1.0,
            to: 0.5,
            duration: 10.0,
        };
        assert!((p.at(5.0) - 0.75).abs() < 1e-12);
        assert_eq!(p.at(20.0), 0.5);
    }

    #[test]
    fn spikes_pattern_is_periodic() {
        let p = LoadPattern::Spikes {
            base: 1.0,
            depth: 0.4,
            period: 10.0,
            width: 1.0,
        };
        assert_eq!(p.at(0.5), 0.4);
        assert_eq!(p.at(5.0), 1.0);
        assert_eq!(p.at(10.5), 0.4);
    }

    #[test]
    fn timeline_samples_patterns() {
        let tl = LoadTimeline::idle(3).with(
            NodeId(1),
            LoadPattern::Step {
                at: 1.0,
                before: 1.0,
                after: 0.9,
            },
        );
        let s0 = tl.sample(0.0);
        let s1 = tl.sample(2.0);
        assert_eq!(s0.cpu_avail(NodeId(1)), 1.0);
        assert_eq!(s1.cpu_avail(NodeId(1)), 0.9);
        assert_eq!(s1.cpu_avail(NodeId(0)), 1.0);
    }

    #[test]
    fn timeline_with_replaces_existing_pattern() {
        let tl = LoadTimeline::idle(1)
            .with(NodeId(0), LoadPattern::Constant(0.5))
            .with(NodeId(0), LoadPattern::Constant(0.8));
        assert_eq!(tl.sample(0.0).cpu_avail(NodeId(0)), 0.8);
    }
}
