//! Fluent construction of [`Cluster`] values.

use crate::arch::Architecture;
use crate::error::ClusterError;
use crate::node::{Node, NodeId};
use crate::topology::{Cluster, Link, Switch, SwitchId};

/// Builder for [`Cluster`]. Switches must be declared before the nodes and
/// links that reference them; [`ClusterBuilder::build`] validates physical
/// parameters and switch-graph connectivity.
///
/// ```
/// use cbes_cluster::{Architecture, ClusterBuilder, SwitchId};
/// let cluster = ClusterBuilder::new("demo")
///     .switch(24, 5e-6, "edge-0")
///     .switch(24, 5e-6, "edge-1")
///     .link(SwitchId(0), SwitchId(1), 12.5e6, 4e-6)
///     .nodes(4, Architecture::Alpha, 533, 1, 1.0, SwitchId(0), 12.5e6, 35e-6)
///     .nodes(4, Architecture::IntelPII, 400, 2, 0.85, SwitchId(1), 12.5e6, 35e-6)
///     .build()
///     .unwrap();
/// assert_eq!(cluster.len(), 8);
/// ```
#[derive(Debug, Default)]
pub struct ClusterBuilder {
    name: String,
    nodes: Vec<Node>,
    switches: Vec<Switch>,
    links: Vec<Link>,
}

impl ClusterBuilder {
    /// Start building a cluster with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ClusterBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Declare a switch; returns the builder. Switch ids are assigned
    /// sequentially from 0 in declaration order.
    pub fn switch(mut self, ports: u32, hop_latency: f64, label: impl Into<String>) -> Self {
        let id = SwitchId(self.switches.len() as u32);
        self.switches.push(Switch {
            id,
            ports,
            hop_latency,
            label: label.into(),
        });
        self
    }

    /// Declare a bidirectional inter-switch link.
    pub fn link(mut self, a: SwitchId, b: SwitchId, bandwidth: f64, latency: f64) -> Self {
        self.links.push(Link {
            a,
            b,
            bandwidth,
            latency,
        });
        self
    }

    /// Declare `count` identical nodes attached to `switch`.
    #[allow(clippy::too_many_arguments)]
    pub fn nodes(
        mut self,
        count: u32,
        arch: Architecture,
        clock_mhz: u32,
        cpus: u32,
        speed: f64,
        switch: SwitchId,
        nic_bandwidth: f64,
        nic_latency: f64,
    ) -> Self {
        for _ in 0..count {
            let id = NodeId(self.nodes.len() as u32);
            self.nodes.push(Node {
                id,
                arch,
                clock_mhz,
                cpus,
                speed,
                switch,
                nic_bandwidth,
                nic_latency,
            });
        }
        self
    }

    /// Validate and finish: checks non-empty node set, positive physical
    /// parameters, valid switch references, and switch-graph connectivity
    /// (routes are pre-computed here).
    pub fn build(self) -> Result<Cluster, ClusterError> {
        if self.nodes.is_empty() {
            return Err(ClusterError::Empty);
        }
        for sw in &self.switches {
            if sw.hop_latency <= 0.0 {
                return Err(ClusterError::NonPositiveParameter("switch hop_latency"));
            }
        }
        for l in &self.links {
            if l.bandwidth <= 0.0 {
                return Err(ClusterError::NonPositiveParameter("link bandwidth"));
            }
            if l.latency <= 0.0 {
                return Err(ClusterError::NonPositiveParameter("link latency"));
            }
        }
        for n in &self.nodes {
            if n.switch.index() >= self.switches.len() {
                return Err(ClusterError::UnknownSwitch(n.switch));
            }
            if n.speed <= 0.0 {
                return Err(ClusterError::NonPositiveParameter("node speed"));
            }
            if n.nic_bandwidth <= 0.0 {
                return Err(ClusterError::NonPositiveParameter("nic bandwidth"));
            }
            if n.nic_latency <= 0.0 {
                return Err(ClusterError::NonPositiveParameter("nic latency"));
            }
            if n.cpus == 0 {
                return Err(ClusterError::NonPositiveParameter("cpus"));
            }
        }
        let routes = Cluster::compute_routes(&self.switches, &self.links)?;
        Ok(Cluster {
            name: self.name,
            nodes: self.nodes,
            switches: self.switches,
            links: self.links,
            routes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cluster_is_rejected() {
        assert_eq!(
            ClusterBuilder::new("e")
                .switch(8, 1e-6, "s")
                .build()
                .unwrap_err(),
            ClusterError::Empty
        );
    }

    #[test]
    fn bad_switch_reference_is_rejected() {
        let err = ClusterBuilder::new("b")
            .switch(8, 1e-6, "s")
            .nodes(1, Architecture::Alpha, 533, 1, 1.0, SwitchId(9), 1e6, 1e-6)
            .build()
            .unwrap_err();
        assert_eq!(err, ClusterError::UnknownSwitch(SwitchId(9)));
    }

    #[test]
    fn non_positive_parameters_are_rejected() {
        let err = ClusterBuilder::new("p")
            .switch(8, 1e-6, "s")
            .nodes(1, Architecture::Alpha, 533, 1, 0.0, SwitchId(0), 1e6, 1e-6)
            .build()
            .unwrap_err();
        assert_eq!(err, ClusterError::NonPositiveParameter("node speed"));

        let err = ClusterBuilder::new("p")
            .switch(8, 1e-6, "s")
            .nodes(1, Architecture::Alpha, 533, 0, 1.0, SwitchId(0), 1e6, 1e-6)
            .build()
            .unwrap_err();
        assert_eq!(err, ClusterError::NonPositiveParameter("cpus"));
    }

    #[test]
    fn single_switch_cluster_builds() {
        let c = ClusterBuilder::new("one")
            .switch(24, 5e-6, "only")
            .nodes(
                3,
                Architecture::Sparc,
                500,
                1,
                0.65,
                SwitchId(0),
                12.5e6,
                35e-6,
            )
            .build()
            .unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.name(), "one");
        assert_eq!(c.switches().len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let c = ClusterBuilder::new("d")
            .switch(24, 5e-6, "s")
            .nodes(
                5,
                Architecture::Alpha,
                533,
                1,
                1.0,
                SwitchId(0),
                12.5e6,
                35e-6,
            )
            .build()
            .unwrap();
        for (i, n) in c.nodes().iter().enumerate() {
            assert_eq!(n.id.index(), i);
        }
    }
}
