//! The calibrated no-load end-to-end latency model.

use cbes_cluster::{LatencyProvider, NodeId};
use serde::{Deserialize, Serialize};

/// Empirical no-load latency model for every unordered node pair of a
/// cluster, piecewise-linear in message size.
///
/// Built by [`crate::Calibrator`] from benchmark measurements at a fixed set
/// of probe sizes; queried by interpolating (and, beyond the largest probe,
/// extrapolating with the last segment's slope — which converges to the
/// path's `1/bandwidth`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    n: usize,
    /// Strictly increasing probe sizes in bytes.
    sizes: Vec<u64>,
    /// `table[pair * sizes.len() + k]` = measured latency at `sizes[k]`.
    table: Vec<f64>,
}

impl LatencyModel {
    /// Assemble a model from raw calibration data.
    ///
    /// `table` must hold `pairs(n) * sizes.len()` entries, pair-major, where
    /// pairs are ordered `(0,1), (0,2), .., (0,n-1), (1,2), ..`.
    ///
    /// # Panics
    /// Panics if dimensions are inconsistent or `sizes` is not strictly
    /// increasing (calibration is in-crate, so this is a programmer error).
    pub fn from_table(n: usize, sizes: Vec<u64>, table: Vec<f64>) -> Self {
        assert!(!sizes.is_empty(), "at least one probe size required");
        assert!(
            sizes.windows(2).all(|w| w[0] < w[1]),
            "probe sizes must be strictly increasing"
        );
        assert_eq!(table.len(), Self::pairs(n) * sizes.len());
        LatencyModel { n, sizes, table }
    }

    /// Number of unordered pairs among `n` nodes.
    #[inline]
    pub fn pairs(n: usize) -> usize {
        n * (n.saturating_sub(1)) / 2
    }

    /// Number of nodes covered by this model.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// The probe sizes the model was calibrated at.
    pub fn probe_sizes(&self) -> &[u64] {
        &self.sizes
    }

    /// Flat index of the unordered pair `(a, b)`, `a != b`.
    #[inline]
    pub fn pair_index(&self, a: NodeId, b: NodeId) -> usize {
        let (i, j) = if a.0 < b.0 {
            (a.index(), b.index())
        } else {
            (b.index(), a.index())
        };
        debug_assert!(i < j && j < self.n);
        // Pairs (i, *) start after all pairs with a smaller first element:
        // sum_{k<i} (n-1-k) = i*(n-1) - i*(i-1)/2; offset within row: j-i-1.
        i * (self.n - 1) - i * i.saturating_sub(1) / 2 + (j - i - 1)
    }

    /// Check the invariants [`LatencyModel::from_table`] asserts, for
    /// models that arrived over the wire (serde bypasses the
    /// constructor, so a malformed payload must be rejected here before
    /// any `no_load` query indexes the table).
    pub fn validate(&self) -> Result<(), String> {
        if self.n == 0 {
            return Err("model covers zero nodes".to_string());
        }
        if self.sizes.is_empty() {
            return Err("model has no probe sizes".to_string());
        }
        if !self.sizes.windows(2).all(|w| w[0] < w[1]) {
            return Err("probe sizes are not strictly increasing".to_string());
        }
        let want = Self::pairs(self.n) * self.sizes.len();
        if self.table.len() != want {
            return Err(format!(
                "table has {} entries but {} nodes x {} probe sizes needs {}",
                self.table.len(),
                self.n,
                self.sizes.len(),
                want
            ));
        }
        if let Some(bad) = self.table.iter().find(|v| !v.is_finite() || **v < 0.0) {
            return Err(format!("table contains a non-physical latency {bad}"));
        }
        Ok(())
    }

    /// Interpolated no-load latency for a `bytes`-byte message between `a`
    /// and `b`. Self-pairs return a tiny loopback constant.
    pub fn no_load(&self, a: NodeId, b: NodeId, bytes: u64) -> f64 {
        if a == b {
            return 1e-6;
        }
        let row = self.pair_index(a, b) * self.sizes.len();
        let pts = &self.table[row..row + self.sizes.len()];
        interpolate(&self.sizes, pts, bytes)
    }
}

/// Piecewise-linear interpolation over `(sizes, values)`, extrapolating with
/// the last segment's slope above the largest size and clamping to the first
/// value below the smallest size.
fn interpolate(sizes: &[u64], values: &[f64], x: u64) -> f64 {
    debug_assert_eq!(sizes.len(), values.len());
    if sizes.len() == 1 {
        return values[0];
    }
    let xf = x as f64;
    if x <= sizes[0] {
        // Below the smallest probe, scale the serialisation part down
        // linearly between 0 and the first probe, pinning at values[0] for
        // simplicity (latency is dominated by the fixed cost there).
        return values[0];
    }
    let last = sizes.len() - 1;
    if x >= sizes[last] {
        let s0 = sizes[last - 1] as f64;
        let s1 = sizes[last] as f64;
        let slope = (values[last] - values[last - 1]) / (s1 - s0);
        return values[last] + slope * (xf - s1);
    }
    let k = sizes.partition_point(|&s| s <= x) - 1;
    let s0 = sizes[k] as f64;
    let s1 = sizes[k + 1] as f64;
    let t = (xf - s0) / (s1 - s0);
    values[k] + t * (values[k + 1] - values[k])
}

impl LatencyProvider for LatencyModel {
    fn latency(&self, a: NodeId, b: NodeId, bytes: u64) -> f64 {
        self.no_load(a, b, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_index_is_a_bijection() {
        let n = 7;
        let m = LatencyModel::from_table(n, vec![1], vec![0.0; LatencyModel::pairs(n)]);
        let mut seen = vec![false; LatencyModel::pairs(n)];
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                let idx = m.pair_index(NodeId(i), NodeId(j));
                assert!(!seen[idx], "duplicate index {idx} for ({i},{j})");
                seen[idx] = true;
                // Symmetry.
                assert_eq!(idx, m.pair_index(NodeId(j), NodeId(i)));
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn interpolation_hits_probe_points_exactly() {
        let sizes = vec![64u64, 1024, 16384];
        let vals = vec![1e-4, 2e-4, 10e-4];
        assert_eq!(interpolate(&sizes, &vals, 64), 1e-4);
        assert_eq!(interpolate(&sizes, &vals, 1024), 2e-4);
        assert_eq!(interpolate(&sizes, &vals, 16384), 10e-4);
    }

    #[test]
    fn interpolation_is_monotone_between_points() {
        let sizes = vec![64u64, 1024];
        let vals = vec![1e-4, 2e-4];
        let mid = interpolate(&sizes, &vals, 544);
        assert!(mid > 1e-4 && mid < 2e-4);
        let exact = 1e-4 + (544.0 - 64.0) / 960.0 * 1e-4;
        assert!((mid - exact).abs() < 1e-15);
    }

    #[test]
    fn extrapolation_uses_last_slope() {
        let sizes = vec![1000u64, 2000];
        let vals = vec![1.0, 2.0]; // slope 1e-3 per byte
        let v = interpolate(&sizes, &vals, 3000);
        assert!((v - 3.0).abs() < 1e-12);
    }

    #[test]
    fn below_first_probe_clamps() {
        let sizes = vec![64u64, 1024];
        let vals = vec![1e-4, 2e-4];
        assert_eq!(interpolate(&sizes, &vals, 1), 1e-4);
    }

    #[test]
    fn self_pair_is_loopback() {
        let m = LatencyModel::from_table(3, vec![64], vec![1.0, 2.0, 3.0]);
        assert!(m.no_load(NodeId(1), NodeId(1), 4096) < 1e-5);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// `pair_index` is symmetric and within bounds for arbitrary n.
            #[test]
            fn pair_index_bounds(n in 2usize..64, a in 0u32..64, b in 0u32..64) {
                prop_assume!((a as usize) < n && (b as usize) < n && a != b);
                let m = LatencyModel::from_table(n, vec![1], vec![0.0; LatencyModel::pairs(n)]);
                let idx = m.pair_index(NodeId(a), NodeId(b));
                prop_assert!(idx < LatencyModel::pairs(n));
                prop_assert_eq!(idx, m.pair_index(NodeId(b), NodeId(a)));
            }

            /// Interpolation of a monotone table is monotone and stays
            /// within the table's value range.
            #[test]
            fn interpolation_monotone(
                base in 1e-5f64..1e-2,
                slope in 1e-10f64..1e-6,
                x in 0u64..2_000_000,
            ) {
                let sizes = vec![64u64, 1024, 16384, 131072];
                let values: Vec<f64> =
                    sizes.iter().map(|&s| base + slope * s as f64).collect();
                let v = interpolate(&sizes, &values, x);
                let vnext = interpolate(&sizes, &values, x + 512);
                prop_assert!(v >= values[0] - 1e-15);
                prop_assert!(vnext >= v - 1e-15);
            }
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_sizes_panic() {
        let _ = LatencyModel::from_table(2, vec![10, 10], vec![1.0, 1.0]);
    }

    #[test]
    fn validate_rejects_wire_malformed_models() {
        let good = LatencyModel::from_table(3, vec![64, 1024], vec![1e-4; 6]);
        assert_eq!(good.validate(), Ok(()));
        // A wrong-dimension table smuggled in through serde.
        let bad: LatencyModel =
            serde_json::from_str("{\"n\": 3, \"sizes\": [64, 1024], \"table\": [0.1, 0.2]}")
                .expect("structurally valid JSON");
        assert!(bad.validate().is_err());
        let negative: LatencyModel =
            serde_json::from_str("{\"n\": 2, \"sizes\": [64], \"table\": [-1.0]}")
                .expect("structurally valid JSON");
        assert!(negative.validate().is_err());
    }
}
