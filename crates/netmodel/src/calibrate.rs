//! Off-line cluster calibration: measuring the no-load end-to-end latency of
//! every node pair at a set of probe sizes, parallelised into benchmark
//! *cliques* so that the `O(N²)` measurement campaign completes in `O(N)`
//! rounds (the paper's NWS "clique control" scripts).

use crate::model::LatencyModel;
use cbes_cluster::{Cluster, NodeId};
use cbes_obs::{names, Counter, Histogram, Registry};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Global-registry handles for calibration timing, resolved once.
struct CalInstruments {
    campaigns: Arc<Counter>,
    round_us: Arc<Histogram>,
}

fn instruments() -> &'static CalInstruments {
    static INSTRUMENTS: OnceLock<CalInstruments> = OnceLock::new();
    INSTRUMENTS.get_or_init(|| {
        let r = Registry::global();
        CalInstruments {
            campaigns: r.counter(names::NETMODEL_CALIBRATIONS),
            round_us: r.histogram(names::NETMODEL_CALIBRATION_ROUND_US),
        }
    })
}

/// Configuration of the calibration campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Calibrator {
    /// Probe message sizes in bytes (strictly increasing).
    pub probe_sizes: Vec<u64>,
    /// Ping-pong repetitions averaged per measurement.
    pub reps: u32,
    /// Relative standard deviation of measurement noise (e.g. `0.01` = 1 %).
    pub noise: f64,
    /// RNG seed for reproducible "measurements".
    pub seed: u64,
}

impl Default for Calibrator {
    fn default() -> Self {
        Calibrator {
            probe_sizes: vec![64, 1024, 16 * 1024, 128 * 1024],
            reps: 5,
            noise: 0.01,
            seed: 0xCBE5,
        }
    }
}

/// Result of a calibration campaign.
#[derive(Debug, Clone)]
pub struct CalibrationOutcome {
    /// The fitted latency model.
    pub model: LatencyModel,
    /// Number of individual pair measurements taken (`pairs × sizes`).
    pub measurements: usize,
    /// Number of parallel benchmark rounds (cliques) used.
    pub rounds: usize,
    /// Estimated wall time had every measurement run serially (seconds of
    /// benchmark traffic; the `O(N²)` cost the paper warns about).
    pub serial_cost: f64,
    /// Estimated wall time with clique parallelism (`O(N)` rounds).
    pub parallel_cost: f64,
}

impl CalibrationOutcome {
    /// Speedup of clique-parallel calibration over the serial campaign.
    pub fn clique_speedup(&self) -> f64 {
        if self.parallel_cost > 0.0 {
            self.serial_cost / self.parallel_cost
        } else {
            1.0
        }
    }
}

impl Calibrator {
    /// Override the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Run the calibration campaign against the (idle) cluster.
    ///
    /// Each pair/size measurement is the topological ground-truth latency
    /// perturbed by multiplicative Gaussian noise, averaged over
    /// [`Calibrator::reps`] repetitions — emulating a careful ping-pong
    /// benchmark with pre-posted receives.
    pub fn calibrate(&self, cluster: &Cluster) -> CalibrationOutcome {
        let n = cluster.len();
        let nsizes = self.probe_sizes.len();
        let npairs = LatencyModel::pairs(n);
        let mut table = vec![0.0f64; npairs * nsizes];
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Benchmark-time accounting: one ping-pong burst per (pair, size).
        let mut serial_cost = 0.0f64;
        let mut parallel_cost = 0.0f64;
        let rounds = round_robin_rounds(n);

        // A template model only to reuse pair indexing.
        let index = |a: NodeId, b: NodeId| -> usize {
            let (i, j) = if a.0 < b.0 {
                (a.index(), b.index())
            } else {
                (b.index(), a.index())
            };
            i * (n - 1) - i * i.saturating_sub(1) / 2 + (j - i - 1)
        };

        let obs = instruments();
        let _span = Registry::global().span(names::SPAN_NETMODEL_CALIBRATE);
        for round in &rounds {
            let round_started = Instant::now();
            let mut round_cost = 0.0f64;
            for &(a, b) in round {
                let (na, nb) = (NodeId(a as u32), NodeId(b as u32));
                let mut pair_cost = 0.0;
                for (k, &size) in self.probe_sizes.iter().enumerate() {
                    let truth = cluster.no_load_latency(na, nb, size);
                    let mut acc = 0.0;
                    for _ in 0..self.reps {
                        acc += truth * gauss_factor(&mut rng, self.noise);
                    }
                    let measured = acc / self.reps as f64;
                    table[index(na, nb) * nsizes + k] = measured;
                    // Round-trip per rep.
                    pair_cost += 2.0 * truth * self.reps as f64;
                }
                serial_cost += pair_cost;
                round_cost = round_cost.max(pair_cost);
            }
            parallel_cost += round_cost;
            obs.round_us.record_duration(round_started.elapsed());
        }
        obs.campaigns.incr();

        CalibrationOutcome {
            model: LatencyModel::from_table(n, self.probe_sizes.clone(), table),
            measurements: npairs * nsizes,
            rounds: rounds.len(),
            serial_cost,
            parallel_cost,
        }
    }
}

/// Multiplicative noise factor `max(0.2, 1 + σ·z)` with `z ~ N(0,1)`
/// (Box–Muller; floor keeps latencies positive).
pub(crate) fn gauss_factor(rng: &mut StdRng, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        return 1.0;
    }
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (1.0 + sigma * z).max(0.2)
}

/// Result of spot-checking a calibrated model against fresh measurements
/// (is the off-line calibration still valid, e.g. after recabling?).
#[derive(Debug, Clone, PartialEq)]
pub struct StalenessReport {
    /// Pairs spot-checked.
    pub checked: usize,
    /// Mean relative deviation between model and fresh measurement.
    pub mean_rel_dev: f64,
    /// Worst relative deviation observed.
    pub max_rel_dev: f64,
}

impl StalenessReport {
    /// True when the model deviates beyond `tol` anywhere.
    pub fn is_stale(&self, tol: f64) -> bool {
        self.max_rel_dev > tol
    }
}

/// Spot-check `model` against `sample` fresh pair measurements on the
/// (current) cluster. A cheap O(sample) probe instead of a full O(N²)
/// recalibration — run it when predictions start drifting.
pub fn verify_model(
    cluster: &Cluster,
    model: &crate::model::LatencyModel,
    sample: usize,
    seed: u64,
) -> StalenessReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = cluster.len();
    let mut devs = Vec::with_capacity(sample.max(1));
    for _ in 0..sample.max(1) {
        let a = rng.random_range(0..n as u32);
        let mut b = rng.random_range(0..n as u32 - 1);
        if b >= a {
            b += 1;
        }
        let size = *[512u64, 4096, 65536]
            .get(rng.random_range(0..3usize))
            .expect("index in range");
        let fresh =
            cluster.no_load_latency(NodeId(a), NodeId(b), size) * gauss_factor(&mut rng, 0.01);
        let predicted = model.no_load(NodeId(a), NodeId(b), size);
        devs.push(((predicted - fresh) / fresh).abs());
    }
    StalenessReport {
        checked: devs.len(),
        mean_rel_dev: devs.iter().sum::<f64>() / devs.len() as f64,
        max_rel_dev: devs.iter().copied().fold(0.0, f64::max),
    }
}

/// Partition all unordered pairs of `0..n` into rounds of pairwise-disjoint
/// pairs (a proper edge colouring of `K_n` via the circle method).
///
/// Yields `n-1` rounds for even `n`, `n` rounds for odd `n`; within a round
/// every node appears at most once, so all benchmarks of a round can run in
/// parallel without interfering — this is what turns the `O(N²)` campaign
/// into `O(N)` wall time.
pub fn round_robin_rounds(n: usize) -> Vec<Vec<(usize, usize)>> {
    if n < 2 {
        return Vec::new();
    }
    // Circle method: with odd n add a bye slot.
    let m = if n.is_multiple_of(2) { n } else { n + 1 };
    let mut ring: Vec<usize> = (0..m).collect();
    let mut rounds = Vec::with_capacity(m - 1);
    for _ in 0..m - 1 {
        let mut round = Vec::with_capacity(m / 2);
        for k in 0..m / 2 {
            let (a, b) = (ring[k], ring[m - 1 - k]);
            // `n` (the bye marker when n is odd) sits out.
            if a < n && b < n {
                round.push((a.min(b), a.max(b)));
            }
        }
        rounds.push(round);
        // Rotate all but the first element.
        ring[1..].rotate_right(1);
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbes_cluster::presets::{orange_grove, two_switch_demo};
    use std::collections::HashSet;

    #[test]
    fn rounds_cover_every_pair_exactly_once() {
        for n in [2usize, 3, 4, 5, 8, 9, 16] {
            let rounds = round_robin_rounds(n);
            let mut seen = HashSet::new();
            for round in &rounds {
                let mut nodes_in_round = HashSet::new();
                for &(a, b) in round {
                    assert!(a < b && b < n);
                    assert!(seen.insert((a, b)), "pair ({a},{b}) repeated, n={n}");
                    assert!(nodes_in_round.insert(a), "node {a} twice in round");
                    assert!(nodes_in_round.insert(b), "node {b} twice in round");
                }
            }
            assert_eq!(seen.len(), n * (n - 1) / 2, "n={n}");
        }
    }

    #[test]
    fn rounds_count_is_linear_in_n() {
        assert_eq!(round_robin_rounds(8).len(), 7);
        assert_eq!(round_robin_rounds(9).len(), 9);
        assert!(round_robin_rounds(0).is_empty());
        assert!(round_robin_rounds(1).is_empty());
    }

    #[test]
    fn calibration_model_tracks_ground_truth() {
        let c = two_switch_demo();
        let out = Calibrator::default().calibrate(&c);
        for a in c.node_ids() {
            for b in c.node_ids() {
                if a == b {
                    continue;
                }
                for &size in &[64u64, 512, 1024, 40_000, 300_000] {
                    let truth = c.no_load_latency(a, b, size);
                    let model = out.model.no_load(a, b, size);
                    let err = (model - truth).abs() / truth;
                    assert!(err < 0.05, "pair {a}->{b} size {size}: err {err}");
                }
            }
        }
    }

    #[test]
    fn calibration_is_deterministic_per_seed() {
        let c = two_switch_demo();
        let a = Calibrator::default().with_seed(1).calibrate(&c);
        let b = Calibrator::default().with_seed(1).calibrate(&c);
        let d = Calibrator::default().with_seed(2).calibrate(&c);
        assert_eq!(a.model, b.model);
        assert_ne!(a.model, d.model);
    }

    #[test]
    fn clique_parallelism_gives_substantial_speedup() {
        let c = orange_grove();
        let out = Calibrator::default().calibrate(&c);
        assert_eq!(out.rounds, 27); // n=28 -> 27 rounds
                                    // 28 nodes: 378 pairs serially vs 27 rounds of up to 14 parallel
                                    // pairs — speedup should approach 14x (bounded by round stragglers).
        assert!(
            out.clique_speedup() > 6.0,
            "speedup {}",
            out.clique_speedup()
        );
        assert_eq!(out.measurements, 378 * 4);
    }

    #[test]
    fn zero_noise_reproduces_truth_exactly_at_probes() {
        let c = two_switch_demo();
        let cal = Calibrator {
            noise: 0.0,
            ..Calibrator::default()
        };
        let out = cal.calibrate(&c);
        let a = NodeId(0);
        let b = NodeId(5);
        for &s in &cal.probe_sizes {
            let truth = c.no_load_latency(a, b, s);
            assert!((out.model.no_load(a, b, s) - truth).abs() < 1e-12);
        }
    }

    #[test]
    fn fresh_calibration_is_not_stale() {
        let c = two_switch_demo();
        let out = Calibrator::default().calibrate(&c);
        let report = verify_model(&c, &out.model, 50, 9);
        assert_eq!(report.checked, 50);
        assert!(!report.is_stale(0.10), "{report:?}");
        assert!(report.mean_rel_dev < 0.05);
    }

    #[test]
    fn topology_change_is_detected_as_stale() {
        // Calibrate on the demo cluster, then "recable" it: a much slower
        // inter-switch link. The old model must flag as stale.
        let before = two_switch_demo();
        let out = Calibrator::default().calibrate(&before);
        let after = cbes_cluster::ClusterBuilder::new("recabled")
            .switch(24, 5e-6 * 50.0, "edge-0")
            .switch(24, 5e-6 * 50.0, "edge-1")
            .link(
                cbes_cluster::SwitchId(0),
                cbes_cluster::SwitchId(1),
                12.5e6,
                400e-6 * 50.0, // 100x the original link latency
            )
            .nodes(
                4,
                cbes_cluster::Architecture::Alpha,
                533,
                1,
                1.0,
                cbes_cluster::SwitchId(0),
                12.5e6,
                35e-6 * 50.0,
            )
            .nodes(
                4,
                cbes_cluster::Architecture::IntelPII,
                400,
                2,
                0.85,
                cbes_cluster::SwitchId(1),
                12.5e6,
                35e-6 * 50.0,
            )
            .build()
            .unwrap();
        let report = verify_model(&after, &out.model, 100, 10);
        assert!(report.is_stale(0.10), "{report:?}");
    }

    #[test]
    fn calibration_times_every_clique_round() {
        let r = Registry::global();
        let rounds_before = r.histogram(names::NETMODEL_CALIBRATION_ROUND_US).count();
        let campaigns_before = r.counter(names::NETMODEL_CALIBRATIONS).get();
        let c = two_switch_demo();
        let out = Calibrator::default().calibrate(&c);
        // Other tests in this binary calibrate concurrently, so check
        // lower bounds, not exact values.
        assert!(
            r.histogram(names::NETMODEL_CALIBRATION_ROUND_US).count()
                >= rounds_before + out.rounds as u64,
            "one timing sample per clique round"
        );
        assert!(r.counter(names::NETMODEL_CALIBRATIONS).get() > campaigns_before);
    }

    #[test]
    fn gauss_factor_is_unbiasedish_and_positive() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut acc = 0.0;
        let n = 20_000;
        for _ in 0..n {
            let f = gauss_factor(&mut rng, 0.05);
            assert!(f > 0.0);
            acc += f;
        }
        let mean = acc / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
    }
}
