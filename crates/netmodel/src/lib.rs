//! The CBES system-information substrate: an empirical end-to-end latency
//! model, its off-line calibration procedure, the run-time load-adjustment
//! rule, and NWS-style forecasters.
//!
//! The paper's key infrastructure idea (§2): measuring all `O(N²)` pairwise
//! latencies continuously is infeasible, so CBES measures them **once**, at
//! calibration time, on an unloaded cluster — parallelised into benchmark
//! *cliques* so wall time is `O(N)` — and at query time *adjusts* the no-load
//! value for the current CPU/NIC load of the two endpoints, which only needs
//! the `O(N)` per-node monitor stream.
//!
//! * [`model::LatencyModel`] — no-load latency per node pair, piecewise-linear
//!   in message size, fitted from calibration measurements.
//! * [`calibrate::Calibrator`] — the off-line measurement campaign.
//! * [`LoadAdjuster`] — no-load → current latency adjustment.
//! * [`forecast`] — last-value / mean / median / adaptive forecasters for the
//!   monitoring stream (NWS-style; the Centurion prototype used NWS, the
//!   Orange Grove prototype used last-value).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod forecast;
pub mod model;

pub use calibrate::{verify_model, CalibrationOutcome, Calibrator, StalenessReport};
pub use model::LatencyModel;

use cbes_cluster::load::LoadState;
use cbes_cluster::{LatencyProvider, NodeId};
use serde::{Deserialize, Serialize};

/// Adjusts a no-load end-to-end latency for the current CPU and NIC load of
/// the two endpoint nodes (paper §2, ref. \[12\]).
///
/// The adjusted latency is
/// `L_c = L_0 · (1 + α·((1-ACPU_src) + (1-ACPU_dst)) + β·(NIC_src + NIC_dst))`:
/// a busy CPU delays protocol processing, a busy NIC delays wire access.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadAdjuster {
    /// Sensitivity of latency to endpoint CPU load.
    pub alpha_cpu: f64,
    /// Sensitivity of latency to endpoint NIC load.
    pub beta_nic: f64,
}

impl Default for LoadAdjuster {
    fn default() -> Self {
        LoadAdjuster {
            alpha_cpu: 0.35,
            beta_nic: 0.6,
        }
    }
}

impl LoadAdjuster {
    /// Multiplicative load factor for a (src, dst) endpoint pair.
    #[inline]
    pub fn factor(&self, load: &LoadState, src: NodeId, dst: NodeId) -> f64 {
        let cpu = (1.0 - load.cpu_avail(src)) + (1.0 - load.cpu_avail(dst));
        let nic = load.nic_load(src) + load.nic_load(dst);
        1.0 + self.alpha_cpu * cpu + self.beta_nic * nic
    }

    /// Adjust a no-load latency for current endpoint load.
    #[inline]
    pub fn adjust(&self, no_load: f64, load: &LoadState, src: NodeId, dst: NodeId) -> f64 {
        no_load * self.factor(load, src, dst)
    }
}

/// A [`LatencyProvider`] view that layers a [`LoadAdjuster`] and a
/// [`LoadState`] over a base no-load provider. This is what the CBES mapping
/// evaluation consumes: current latencies `L_c` derived in `O(1)` per query
/// from the calibrated model plus the monitor's per-node load snapshot.
#[derive(Debug, Clone)]
pub struct AdjustedLatency<'a, P: LatencyProvider> {
    base: &'a P,
    adjuster: LoadAdjuster,
    load: &'a LoadState,
}

impl<'a, P: LatencyProvider> AdjustedLatency<'a, P> {
    /// Wrap `base` with the given adjuster and load snapshot.
    pub fn new(base: &'a P, adjuster: LoadAdjuster, load: &'a LoadState) -> Self {
        AdjustedLatency {
            base,
            adjuster,
            load,
        }
    }
}

impl<P: LatencyProvider> LatencyProvider for AdjustedLatency<'_, P> {
    fn latency(&self, a: NodeId, b: NodeId, bytes: u64) -> f64 {
        self.adjuster
            .adjust(self.base.latency(a, b, bytes), self.load, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbes_cluster::presets::two_switch_demo;

    #[test]
    fn idle_load_leaves_latency_unchanged() {
        let adj = LoadAdjuster::default();
        let load = LoadState::idle(4);
        assert_eq!(adj.factor(&load, NodeId(0), NodeId(1)), 1.0);
        assert_eq!(adj.adjust(1e-4, &load, NodeId(0), NodeId(1)), 1e-4);
    }

    #[test]
    fn cpu_load_increases_latency() {
        let adj = LoadAdjuster::default();
        let mut load = LoadState::idle(4);
        load.set_cpu_avail(NodeId(0), 0.5);
        let f = adj.factor(&load, NodeId(0), NodeId(1));
        assert!(f > 1.0);
        assert!((f - (1.0 + 0.35 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn nic_load_increases_latency() {
        let adj = LoadAdjuster::default();
        let mut load = LoadState::idle(4);
        load.set_nic_load(NodeId(1), 0.4);
        let f = adj.factor(&load, NodeId(0), NodeId(1));
        assert!((f - (1.0 + 0.6 * 0.4)).abs() < 1e-12);
    }

    #[test]
    fn load_effects_add_across_endpoints() {
        let adj = LoadAdjuster {
            alpha_cpu: 1.0,
            beta_nic: 0.0,
        };
        let mut load = LoadState::idle(4);
        load.set_cpu_avail(NodeId(0), 0.8);
        load.set_cpu_avail(NodeId(1), 0.7);
        let f = adj.factor(&load, NodeId(0), NodeId(1));
        assert!((f - 1.5).abs() < 1e-12);
    }

    #[test]
    fn adjusted_view_implements_latency_provider() {
        let c = two_switch_demo();
        let mut load = LoadState::idle(c.len());
        load.set_cpu_avail(NodeId(0), 0.5);
        let view = AdjustedLatency::new(&c, LoadAdjuster::default(), &load);
        let raw = c.latency(NodeId(0), NodeId(1), 1024);
        let adj = view.latency(NodeId(0), NodeId(1), 1024);
        assert!(adj > raw);
        // Pair not involving node 0 is unaffected.
        assert_eq!(
            view.latency(NodeId(1), NodeId(2), 1024),
            c.latency(NodeId(1), NodeId(2), 1024)
        );
    }
}
