//! Forecasters for monitored resource series (CPU availability, NIC load).
//!
//! The Centurion prototype used NWS, whose distinguishing feature is
//! *next-period forecasting* from a family of simple predictors; the Orange
//! Grove prototype simply considered "the latest measured load values as
//! valid for the next time period". Both styles are provided, plus an
//! NWS-like adaptive meta-forecaster that tracks which simple predictor has
//! recently been most accurate.

use std::collections::VecDeque;
use std::sync::{Arc, OnceLock};

use cbes_obs::{names, Histogram, HistogramTimer, Registry};

/// Time one full forecast refresh (re-predicting every monitored series
/// for the next period). The returned guard records the elapsed
/// microseconds into the global `netmodel.forecast_refresh_us` histogram
/// when dropped — callers wrap the refresh loop:
///
/// ```
/// let _t = cbes_netmodel::forecast::refresh_timer();
/// // ... call predict() across all per-node forecasters ...
/// ```
pub fn refresh_timer() -> HistogramTimer<'static> {
    static HIST: OnceLock<Arc<Histogram>> = OnceLock::new();
    HIST.get_or_init(|| Registry::global().histogram(names::NETMODEL_FORECAST_REFRESH_US))
        .start_timer()
}

/// A one-step-ahead forecaster over a scalar measurement stream.
pub trait Forecaster {
    /// Feed one new measurement.
    fn observe(&mut self, value: f64);
    /// Predict the next value. Before any observation, returns `default`.
    fn predict(&self) -> f64;
    /// Reset to the unobserved state.
    fn reset(&mut self);
}

/// The Orange Grove strategy: the last measured value is the forecast.
#[derive(Debug, Clone, Default)]
pub struct LastValue {
    last: Option<f64>,
    default: f64,
}

impl LastValue {
    /// Forecaster returning `default` until the first observation.
    pub fn new(default: f64) -> Self {
        LastValue {
            last: None,
            default,
        }
    }
}

impl Forecaster for LastValue {
    fn observe(&mut self, value: f64) {
        self.last = Some(value);
    }
    fn predict(&self) -> f64 {
        self.last.unwrap_or(self.default)
    }
    fn reset(&mut self) {
        self.last = None;
    }
}

/// Mean of the most recent `window` measurements.
#[derive(Debug, Clone)]
pub struct RunningMean {
    window: usize,
    buf: VecDeque<f64>,
    sum: f64,
    default: f64,
}

impl RunningMean {
    /// A windowed mean forecaster. `window` must be ≥ 1.
    pub fn new(window: usize, default: f64) -> Self {
        assert!(window >= 1, "window must be at least 1");
        RunningMean {
            window,
            buf: VecDeque::with_capacity(window),
            sum: 0.0,
            default,
        }
    }
}

impl Forecaster for RunningMean {
    fn observe(&mut self, value: f64) {
        if self.buf.len() == self.window {
            if let Some(old) = self.buf.pop_front() {
                self.sum -= old;
            }
        }
        self.buf.push_back(value);
        self.sum += value;
    }
    fn predict(&self) -> f64 {
        if self.buf.is_empty() {
            self.default
        } else {
            self.sum / self.buf.len() as f64
        }
    }
    fn reset(&mut self) {
        self.buf.clear();
        self.sum = 0.0;
    }
}

/// Median of the most recent `window` measurements — robust to the short
/// transient spikes the paper found harmless.
#[derive(Debug, Clone)]
pub struct SlidingMedian {
    window: usize,
    buf: VecDeque<f64>,
    default: f64,
}

impl SlidingMedian {
    /// A windowed median forecaster. `window` must be ≥ 1.
    pub fn new(window: usize, default: f64) -> Self {
        assert!(window >= 1, "window must be at least 1");
        SlidingMedian {
            window,
            buf: VecDeque::with_capacity(window),
            default,
        }
    }
}

impl Forecaster for SlidingMedian {
    fn observe(&mut self, value: f64) {
        if self.buf.len() == self.window {
            self.buf.pop_front();
        }
        self.buf.push_back(value);
    }
    fn predict(&self) -> f64 {
        if self.buf.is_empty() {
            return self.default;
        }
        let mut v: Vec<f64> = self.buf.iter().copied().collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mid = v.len() / 2;
        if v.len() % 2 == 1 {
            v[mid]
        } else {
            0.5 * (v[mid - 1] + v[mid])
        }
    }
    fn reset(&mut self) {
        self.buf.clear();
    }
}

/// NWS-style adaptive forecaster: runs last-value, windowed-mean and
/// windowed-median side by side, tracks each predictor's recent mean absolute
/// error, and answers with the currently best one.
#[derive(Debug, Clone)]
pub struct Adaptive {
    candidates: Vec<Candidate>,
    err_window: usize,
}

#[derive(Debug, Clone)]
struct Candidate {
    kind: Kind,
    errors: VecDeque<f64>,
}

#[derive(Debug, Clone)]
enum Kind {
    Last(LastValue),
    Mean(RunningMean),
    Median(SlidingMedian),
}

impl Kind {
    fn observe(&mut self, v: f64) {
        match self {
            Kind::Last(f) => f.observe(v),
            Kind::Mean(f) => f.observe(v),
            Kind::Median(f) => f.observe(v),
        }
    }
    fn predict(&self) -> f64 {
        match self {
            Kind::Last(f) => f.predict(),
            Kind::Mean(f) => f.predict(),
            Kind::Median(f) => f.predict(),
        }
    }
    fn reset(&mut self) {
        match self {
            Kind::Last(f) => f.reset(),
            Kind::Mean(f) => f.reset(),
            Kind::Median(f) => f.reset(),
        }
    }
}

impl Adaptive {
    /// Standard NWS-like ensemble with the given smoothing window.
    pub fn new(window: usize, default: f64) -> Self {
        Adaptive {
            candidates: vec![
                Candidate {
                    kind: Kind::Last(LastValue::new(default)),
                    errors: VecDeque::new(),
                },
                Candidate {
                    kind: Kind::Mean(RunningMean::new(window, default)),
                    errors: VecDeque::new(),
                },
                Candidate {
                    kind: Kind::Median(SlidingMedian::new(window, default)),
                    errors: VecDeque::new(),
                },
            ],
            err_window: window.max(2) * 2,
        }
    }

    fn best(&self) -> &Candidate {
        self.candidates
            .iter()
            .min_by(|a, b| {
                mean_err(&a.errors)
                    .partial_cmp(&mean_err(&b.errors))
                    .unwrap()
            })
            .expect("at least one candidate")
    }
}

fn mean_err(errors: &VecDeque<f64>) -> f64 {
    if errors.is_empty() {
        f64::INFINITY
    } else {
        errors.iter().sum::<f64>() / errors.len() as f64
    }
}

impl Forecaster for Adaptive {
    fn observe(&mut self, value: f64) {
        let err_window = self.err_window;
        for c in &mut self.candidates {
            let e = (c.kind.predict() - value).abs();
            if c.errors.len() == err_window {
                c.errors.pop_front();
            }
            c.errors.push_back(e);
            c.kind.observe(value);
        }
    }
    fn predict(&self) -> f64 {
        // Before any error history exists, all are tied at infinity; the
        // first candidate (last-value) wins, which is the sane default.
        self.best().kind.predict()
    }
    fn reset(&mut self) {
        for c in &mut self.candidates {
            c.errors.clear();
            c.kind.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_value_returns_default_then_last() {
        let mut f = LastValue::new(1.0);
        assert_eq!(f.predict(), 1.0);
        f.observe(0.5);
        f.observe(0.7);
        assert_eq!(f.predict(), 0.7);
        f.reset();
        assert_eq!(f.predict(), 1.0);
    }

    #[test]
    fn running_mean_windows_correctly() {
        let mut f = RunningMean::new(3, 0.0);
        for v in [1.0, 2.0, 3.0, 4.0] {
            f.observe(v);
        }
        // Window holds [2, 3, 4].
        assert!((f.predict() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sliding_median_resists_spikes() {
        let mut f = SlidingMedian::new(5, 1.0);
        for v in [0.9, 0.9, 0.1, 0.9, 0.9] {
            f.observe(v);
        }
        assert_eq!(f.predict(), 0.9);
    }

    #[test]
    fn median_of_even_window_averages_middles() {
        let mut f = SlidingMedian::new(4, 0.0);
        for v in [1.0, 2.0, 3.0, 4.0] {
            f.observe(v);
        }
        assert!((f.predict() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn adaptive_tracks_stable_series_with_low_error() {
        let mut f = Adaptive::new(5, 1.0);
        for _ in 0..20 {
            f.observe(0.8);
        }
        assert!((f.predict() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn adaptive_prefers_median_under_spiky_load() {
        let mut f = Adaptive::new(5, 1.0);
        // Stable 0.9 with periodic one-sample spikes down to 0.1.
        for i in 0..60 {
            let v = if i % 7 == 0 { 0.1 } else { 0.9 };
            f.observe(v);
        }
        // After a spike, last-value predicts 0.1 (bad); median stays 0.9.
        let p = f.predict();
        assert!(
            (p - 0.9).abs() < 0.2,
            "adaptive should resist spikes, got {p}"
        );
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_mean_panics() {
        let _ = RunningMean::new(0, 0.0);
    }
}
