//! Application profiles — the summarised behaviour CBES evaluates mappings
//! against (paper §2–3).

use cbes_cluster::Architecture;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A group of same-size messages exchanged with one peer (`mc_j` messages of
/// `ms_j` bytes in paper eq. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageGroup {
    /// The peer rank.
    pub peer: usize,
    /// Message size in bytes (`ms`).
    pub bytes: u64,
    /// Number of messages in the group (`mc`).
    pub count: u64,
}

/// Profile of one application process (paper §3.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessProfile {
    /// The process (MPI rank).
    pub rank: usize,
    /// `X_i`: accumulated own-code execution time, seconds, on the
    /// profiling node.
    pub x: f64,
    /// `O_i`: accumulated message-passing library overhead, seconds.
    pub o: f64,
    /// `B_i`: accumulated blocked time, seconds.
    pub b: f64,
    /// Message groups this process sent, one entry per (peer, size).
    pub sends: Vec<MessageGroup>,
    /// Message groups this process received, one entry per (peer, size).
    pub recvs: Vec<MessageGroup>,
    /// `Speed_profile_j`: relative speed of the node this process was
    /// profiled on (numerator of the speed ratio in eq. 5).
    pub profile_speed: f64,
    /// `λ_i = B_i / Θ_i^profile` (eq. 7): expansion (>1) or overlap-driven
    /// reduction (<1) of theoretical communication time.
    pub lambda: f64,
}

impl ProcessProfile {
    /// Total message bytes sent by this process.
    pub fn bytes_sent(&self) -> u64 {
        self.sends.iter().map(|g| g.bytes * g.count).sum()
    }

    /// Total message count sent by this process.
    pub fn messages_sent(&self) -> u64 {
        self.sends.iter().map(|g| g.count).sum()
    }

    /// Total number of message groups (the evaluation-cost driver the paper
    /// identifies: complex communication patterns make each mapping
    /// evaluation more expensive).
    pub fn group_count(&self) -> usize {
        self.sends.len() + self.recvs.len()
    }
}

/// A complete application profile: per-process summaries plus experimentally
/// measured per-architecture speed ratios (footnote to eq. 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// Application name, e.g. `"lu.A.8"`.
    pub name: String,
    /// Per-process profiles, indexed by rank.
    pub procs: Vec<ProcessProfile>,
    /// Relative speed this application achieves on each architecture
    /// (reference architecture = 1.0).
    pub arch_ratios: BTreeMap<Architecture, f64>,
}

impl AppProfile {
    /// Number of processes the application was profiled with (`n_M`).
    pub fn num_procs(&self) -> usize {
        self.procs.len()
    }

    /// Aggregate computation time `Σ (X_i + O_i)` over all processes.
    pub fn total_compute(&self) -> f64 {
        self.procs.iter().map(|p| p.x + p.o).sum()
    }

    /// Aggregate blocked (communication) time `Σ B_i`.
    pub fn total_comm(&self) -> f64 {
        self.procs.iter().map(|p| p.b).sum()
    }

    /// Computation share of total busy time, in `[0, 1]` — the paper quotes
    /// e.g. an "80%/20% computation to communication ratio" for LU(2).
    pub fn compute_fraction(&self) -> f64 {
        let c = self.total_compute();
        let m = self.total_comm();
        if c + m > 0.0 {
            c / (c + m)
        } else {
            1.0
        }
    }

    /// Relative speed of `arch` for this application (1.0 when unmeasured).
    pub fn arch_ratio(&self, arch: Architecture) -> f64 {
        self.arch_ratios.get(&arch).copied().unwrap_or(1.0)
    }

    /// Serialise to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("profile serialisation cannot fail")
    }

    /// Parse a profile back from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proc_profile(rank: usize, x: f64, b: f64) -> ProcessProfile {
        ProcessProfile {
            rank,
            x,
            o: 0.1,
            b,
            sends: vec![MessageGroup {
                peer: 1 - rank,
                bytes: 1024,
                count: 10,
            }],
            recvs: vec![MessageGroup {
                peer: 1 - rank,
                bytes: 1024,
                count: 10,
            }],
            profile_speed: 1.0,
            lambda: 1.0,
        }
    }

    fn app() -> AppProfile {
        AppProfile {
            name: "t".into(),
            procs: vec![proc_profile(0, 4.0, 0.9), proc_profile(1, 3.8, 1.1)],
            arch_ratios: BTreeMap::from([(Architecture::Alpha, 1.0), (Architecture::Sparc, 0.65)]),
        }
    }

    #[test]
    fn aggregates_are_consistent() {
        let a = app();
        assert_eq!(a.num_procs(), 2);
        assert!((a.total_compute() - 8.0).abs() < 1e-12);
        assert!((a.total_comm() - 2.0).abs() < 1e-12);
        assert!((a.compute_fraction() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn arch_ratio_defaults_to_one() {
        let a = app();
        assert_eq!(a.arch_ratio(Architecture::Sparc), 0.65);
        assert_eq!(a.arch_ratio(Architecture::IntelPII), 1.0);
    }

    #[test]
    fn profile_json_roundtrip() {
        let a = app();
        let back = AppProfile::from_json(&a.to_json()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn per_process_accessors() {
        let p = proc_profile(0, 1.0, 1.0);
        assert_eq!(p.bytes_sent(), 10 * 1024);
        assert_eq!(p.messages_sent(), 10);
        assert_eq!(p.group_count(), 2);
    }

    #[test]
    fn empty_profile_compute_fraction_is_one() {
        let a = AppProfile {
            name: "e".into(),
            procs: vec![],
            arch_ratios: BTreeMap::new(),
        };
        assert_eq!(a.compute_fraction(), 1.0);
    }
}

/// Merge several profiles of the *same process set* (e.g. per-phase
/// profiles) into one cumulative profile: times add, message groups merge,
/// and `λ` is re-derived as total blocked time over total theoretical time
/// (`Θ_i` is recovered per part as `B_i / λ_i`).
///
/// # Panics
/// Panics if `parts` is empty or the process counts differ.
pub fn merge_profiles(name: &str, parts: &[&AppProfile]) -> AppProfile {
    assert!(!parts.is_empty(), "nothing to merge");
    let n = parts[0].num_procs();
    assert!(
        parts.iter().all(|p| p.num_procs() == n),
        "all parts must cover the same processes"
    );
    let procs = (0..n)
        .map(|rank| {
            let mut x = 0.0;
            let mut o = 0.0;
            let mut b = 0.0;
            let mut theta = 0.0;
            let mut sends: std::collections::BTreeMap<(usize, u64), u64> = Default::default();
            let mut recvs: std::collections::BTreeMap<(usize, u64), u64> = Default::default();
            for part in parts {
                let p = &part.procs[rank];
                x += p.x;
                o += p.o;
                b += p.b;
                if p.lambda > 0.0 {
                    theta += p.b / p.lambda;
                }
                for g in &p.sends {
                    *sends.entry((g.peer, g.bytes)).or_insert(0) += g.count;
                }
                for g in &p.recvs {
                    *recvs.entry((g.peer, g.bytes)).or_insert(0) += g.count;
                }
            }
            let group = |m: std::collections::BTreeMap<(usize, u64), u64>| {
                m.into_iter()
                    .map(|((peer, bytes), count)| MessageGroup { peer, bytes, count })
                    .collect::<Vec<_>>()
            };
            ProcessProfile {
                rank,
                x,
                o,
                b,
                sends: group(sends),
                recvs: group(recvs),
                profile_speed: parts[0].procs[rank].profile_speed,
                lambda: if theta > 0.0 { b / theta } else { 1.0 },
            }
        })
        .collect();
    AppProfile {
        name: name.to_string(),
        procs,
        arch_ratios: parts[0].arch_ratios.clone(),
    }
}

#[cfg(test)]
mod merge_tests {
    use super::*;

    fn part(x: f64, b: f64, lambda: f64, bytes: u64) -> AppProfile {
        AppProfile {
            name: "part".into(),
            procs: vec![ProcessProfile {
                rank: 0,
                x,
                o: 0.0,
                b,
                sends: vec![MessageGroup {
                    peer: 1,
                    bytes,
                    count: 5,
                }],
                recvs: vec![],
                profile_speed: 1.0,
                lambda,
            }],
            arch_ratios: std::collections::BTreeMap::new(),
        }
    }

    #[test]
    fn merge_sums_times_and_groups() {
        let a = part(1.0, 0.5, 1.0, 64);
        let b = part(2.0, 0.25, 0.5, 64);
        let m = merge_profiles("m", &[&a, &b]);
        assert_eq!(m.name, "m");
        let p = &m.procs[0];
        assert!((p.x - 3.0).abs() < 1e-12);
        assert!((p.b - 0.75).abs() < 1e-12);
        // Same (peer, size) groups merge: 5 + 5 messages.
        assert_eq!(
            p.sends,
            vec![MessageGroup {
                peer: 1,
                bytes: 64,
                count: 10
            }]
        );
        // Θ = 0.5/1.0 + 0.25/0.5 = 1.0; λ = 0.75 / 1.0.
        assert!((p.lambda - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_keeps_distinct_sizes_separate() {
        let a = part(1.0, 0.1, 1.0, 64);
        let b = part(1.0, 0.1, 1.0, 128);
        let m = merge_profiles("m", &[&a, &b]);
        assert_eq!(m.procs[0].sends.len(), 2);
    }

    #[test]
    #[should_panic(expected = "nothing to merge")]
    fn merge_rejects_empty() {
        let _ = merge_profiles("m", &[]);
    }
}
