//! Trace events, in the spirit of a LAM/MPI + XMPI execution trace.

use cbes_cluster::NodeId;
use serde::{Deserialize, Serialize};

/// One event in a rank's execution trace.
///
/// Durations are already split into the three accounting classes the CBES
/// formulation needs (paper §3.1): own-code computation (`X`), message
/// passing library overhead (`O`), and blocked/waiting time (`B`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// The rank executed its own application code.
    Compute {
        /// Start time (seconds).
        start: f64,
        /// Duration (seconds); accumulates into `X_i`.
        dur: f64,
    },
    /// The rank executed message-passing library code.
    Overhead {
        /// Start time (seconds).
        start: f64,
        /// Duration (seconds); accumulates into `O_i`.
        dur: f64,
    },
    /// The rank was blocked waiting for a message (or in a barrier).
    Blocked {
        /// Start time (seconds).
        start: f64,
        /// Duration (seconds); accumulates into `B_i`.
        dur: f64,
    },
    /// The rank handed a message to the transport.
    Send {
        /// Time the message was submitted.
        t: f64,
        /// Destination rank.
        to: usize,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// A message was delivered to this rank.
    Recv {
        /// Delivery completion time.
        t: f64,
        /// Source rank.
        from: usize,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// An application phase marker (LAM/MPI's non-standard trace segment
    /// statements); separates the trace into independently profiled segments.
    Segment {
        /// Time of the marker.
        t: f64,
        /// Segment id that *starts* at this marker.
        id: u32,
    },
}

impl TraceEvent {
    /// The event's timestamp (start time for duration events).
    pub fn time(&self) -> f64 {
        match *self {
            TraceEvent::Compute { start, .. }
            | TraceEvent::Overhead { start, .. }
            | TraceEvent::Blocked { start, .. } => start,
            TraceEvent::Send { t, .. }
            | TraceEvent::Recv { t, .. }
            | TraceEvent::Segment { t, .. } => t,
        }
    }
}

/// The event stream of one rank, together with the node it executed on
/// (needed to normalise profile times to the profiling node's speed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankTrace {
    /// MPI rank.
    pub rank: usize,
    /// Node the rank was mapped to during the traced run.
    pub node: NodeId,
    /// Events in non-decreasing time order.
    pub events: Vec<TraceEvent>,
    /// Completion time of the rank.
    pub end: f64,
}

impl RankTrace {
    /// A new, empty rank trace.
    pub fn new(rank: usize, node: NodeId) -> Self {
        RankTrace {
            rank,
            node,
            events: Vec::new(),
            end: 0.0,
        }
    }

    /// Total duration recorded in each accounting class `(X, O, B)`.
    pub fn totals(&self) -> (f64, f64, f64) {
        let (mut x, mut o, mut b) = (0.0, 0.0, 0.0);
        for e in &self.events {
            match *e {
                TraceEvent::Compute { dur, .. } => x += dur,
                TraceEvent::Overhead { dur, .. } => o += dur,
                TraceEvent::Blocked { dur, .. } => b += dur,
                _ => {}
            }
        }
        (x, o, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate_by_class() {
        let mut rt = RankTrace::new(0, NodeId(0));
        rt.events = vec![
            TraceEvent::Compute {
                start: 0.0,
                dur: 1.0,
            },
            TraceEvent::Overhead {
                start: 1.0,
                dur: 0.25,
            },
            TraceEvent::Blocked {
                start: 1.25,
                dur: 0.5,
            },
            TraceEvent::Compute {
                start: 1.75,
                dur: 2.0,
            },
            TraceEvent::Send {
                t: 3.75,
                to: 1,
                bytes: 8,
            },
        ];
        let (x, o, b) = rt.totals();
        assert_eq!((x, o, b), (3.0, 0.25, 0.5));
    }

    #[test]
    fn event_time_extraction() {
        assert_eq!(
            TraceEvent::Compute {
                start: 2.0,
                dur: 1.0
            }
            .time(),
            2.0
        );
        assert_eq!(
            TraceEvent::Recv {
                t: 4.0,
                from: 0,
                bytes: 1
            }
            .time(),
            4.0
        );
        assert_eq!(TraceEvent::Segment { t: 5.0, id: 1 }.time(), 5.0);
    }
}
