//! Trace → profile reduction (the role of the paper's modified XMPI).

use crate::event::TraceEvent;
use crate::profile::{AppProfile, MessageGroup, ProcessProfile};
use crate::Trace;
use cbes_cluster::{Cluster, LatencyProvider, NodeId};
use std::collections::BTreeMap;

/// Reduce an execution trace into an [`AppProfile`].
///
/// * `mapping` — the node each rank ran on during the profiled run (the
///   *profiling mapping*); used for `Speed_profile_j` and for computing
///   `Θ_i^profile`, the denominator of `λ_i` (paper eq. 7).
/// * `latency` — the no-load latency model used to evaluate eq. 6 for the
///   profiling mapping. Using the same model here and at prediction time is
///   what makes `λ` transferable across mappings.
pub fn extract_profile(
    name: &str,
    trace: &Trace,
    cluster: &Cluster,
    mapping: &[NodeId],
    latency: &impl LatencyProvider,
) -> AppProfile {
    assert_eq!(
        trace.num_ranks(),
        mapping.len(),
        "mapping must cover every traced rank"
    );
    let procs = trace
        .ranks
        .iter()
        .map(|rt| reduce_rank(rt.rank, &rt.events, cluster, mapping, latency))
        .collect();
    AppProfile {
        name: name.to_string(),
        procs,
        arch_ratios: arch_ratios(cluster),
    }
}

/// Reduce a trace into one profile per segment (phase markers inserted with
/// `TraceEvent::Segment`, mirroring LAM/MPI's non-standard phase
/// statements). Events before the first marker form segment 0.
///
/// Returned profiles are keyed by segment id and named `"{name}#{id}"`.
pub fn extract_segment_profiles(
    name: &str,
    trace: &Trace,
    cluster: &Cluster,
    mapping: &[NodeId],
    latency: &impl LatencyProvider,
) -> BTreeMap<u32, AppProfile> {
    assert_eq!(trace.num_ranks(), mapping.len());
    // Split each rank's events by segment id.
    let mut by_segment: BTreeMap<u32, Vec<Vec<TraceEvent>>> = BTreeMap::new();
    for rt in &trace.ranks {
        let mut current = 0u32;
        for e in &rt.events {
            if let TraceEvent::Segment { id, .. } = e {
                current = *id;
                continue;
            }
            let seg = by_segment
                .entry(current)
                .or_insert_with(|| vec![Vec::new(); trace.num_ranks()]);
            seg[rt.rank].push(e.clone());
        }
    }
    by_segment
        .into_iter()
        .map(|(id, rank_events)| {
            let procs = rank_events
                .iter()
                .enumerate()
                .map(|(rank, events)| reduce_rank(rank, events, cluster, mapping, latency))
                .collect();
            (
                id,
                AppProfile {
                    name: format!("{name}#{id}"),
                    procs,
                    arch_ratios: arch_ratios(cluster),
                },
            )
        })
        .collect()
}

/// Mean relative node speed per architecture present in the cluster — the
/// "experimentally measured speed ratios for all cluster node architectures"
/// stored in the paper's application profiles.
fn arch_ratios(cluster: &Cluster) -> BTreeMap<cbes_cluster::Architecture, f64> {
    let mut acc: BTreeMap<cbes_cluster::Architecture, (f64, u32)> = BTreeMap::new();
    for n in cluster.nodes() {
        let e = acc.entry(n.arch).or_insert((0.0, 0));
        e.0 += n.speed;
        e.1 += 1;
    }
    acc.into_iter()
        .map(|(a, (sum, cnt))| (a, sum / cnt as f64))
        .collect()
}

fn reduce_rank(
    rank: usize,
    events: &[TraceEvent],
    cluster: &Cluster,
    mapping: &[NodeId],
    latency: &impl LatencyProvider,
) -> ProcessProfile {
    let (mut x, mut o, mut b) = (0.0, 0.0, 0.0);
    let mut sends: BTreeMap<(usize, u64), u64> = BTreeMap::new();
    let mut recvs: BTreeMap<(usize, u64), u64> = BTreeMap::new();
    for e in events {
        match *e {
            TraceEvent::Compute { dur, .. } => x += dur,
            TraceEvent::Overhead { dur, .. } => o += dur,
            TraceEvent::Blocked { dur, .. } => b += dur,
            TraceEvent::Send { to, bytes, .. } => {
                *sends.entry((to, bytes)).or_insert(0) += 1;
            }
            TraceEvent::Recv { from, bytes, .. } => {
                *recvs.entry((from, bytes)).or_insert(0) += 1;
            }
            TraceEvent::Segment { .. } => {}
        }
    }
    let to_groups = |m: &BTreeMap<(usize, u64), u64>| -> Vec<MessageGroup> {
        m.iter()
            .map(|(&(peer, bytes), &count)| MessageGroup { peer, bytes, count })
            .collect()
    };
    let sends = to_groups(&sends);
    let recvs = to_groups(&recvs);
    let theta = theta(rank, &sends, &recvs, mapping, latency);
    let lambda = if theta > 0.0 { b / theta } else { 1.0 };
    ProcessProfile {
        rank,
        x,
        o,
        b,
        sends,
        recvs,
        profile_speed: cluster.node(mapping[rank]).speed,
        lambda,
    }
}

/// Paper eq. 6: theoretical communication time of process `rank` under the
/// given mapping — each received group contributes `mc · L(sender → me, ms)`
/// and each sent group `mc · L(me → receiver, ms)`.
pub fn theta(
    rank: usize,
    sends: &[MessageGroup],
    recvs: &[MessageGroup],
    mapping: &[NodeId],
    latency: &impl LatencyProvider,
) -> f64 {
    let me = mapping[rank];
    let mut t = 0.0;
    for g in recvs {
        t += g.count as f64 * latency.latency(mapping[g.peer], me, g.bytes);
    }
    for g in sends {
        t += g.count as f64 * latency.latency(me, mapping[g.peer], g.bytes);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::RankTrace;
    use cbes_cluster::presets::two_switch_demo;

    /// A hand-built two-rank trace: rank 0 computes 2 s then sends 10×1 KiB
    /// to rank 1; rank 1 blocks for them.
    fn sample_trace() -> Trace {
        let mut r0 = RankTrace::new(0, NodeId(0));
        r0.events.push(TraceEvent::Compute {
            start: 0.0,
            dur: 2.0,
        });
        for i in 0..10 {
            r0.events.push(TraceEvent::Overhead {
                start: 2.0 + i as f64 * 0.001,
                dur: 0.0005,
            });
            r0.events.push(TraceEvent::Send {
                t: 2.0 + i as f64 * 0.001,
                to: 1,
                bytes: 1024,
            });
        }
        r0.end = 2.01;
        let mut r1 = RankTrace::new(1, NodeId(1));
        r1.events.push(TraceEvent::Blocked {
            start: 0.0,
            dur: 2.002,
        });
        for i in 0..10 {
            r1.events.push(TraceEvent::Recv {
                t: 2.0 + i as f64 * 0.001,
                from: 0,
                bytes: 1024,
            });
        }
        r1.end = 2.01;
        Trace {
            ranks: vec![r0, r1],
            wall_time: 2.01,
        }
    }

    #[test]
    fn extraction_groups_messages() {
        let c = two_switch_demo();
        let mapping = [NodeId(0), NodeId(1)];
        let p = extract_profile("t", &sample_trace(), &c, &mapping, &c);
        assert_eq!(p.procs[0].sends.len(), 1);
        assert_eq!(p.procs[0].sends[0].count, 10);
        assert_eq!(p.procs[0].sends[0].bytes, 1024);
        assert_eq!(p.procs[0].sends[0].peer, 1);
        assert_eq!(p.procs[1].recvs[0].count, 10);
        assert!(p.procs[0].recvs.is_empty());
    }

    #[test]
    fn extraction_accumulates_xob() {
        let c = two_switch_demo();
        let mapping = [NodeId(0), NodeId(1)];
        let p = extract_profile("t", &sample_trace(), &c, &mapping, &c);
        assert!((p.procs[0].x - 2.0).abs() < 1e-12);
        assert!((p.procs[0].o - 0.005).abs() < 1e-12);
        assert!((p.procs[1].b - 2.002).abs() < 1e-12);
    }

    #[test]
    fn lambda_reflects_blocked_vs_theoretical() {
        let c = two_switch_demo();
        let mapping = [NodeId(0), NodeId(1)];
        let p = extract_profile("t", &sample_trace(), &c, &mapping, &c);
        // Rank 1 blocked ~2 s for ~tens of ms of theoretical latency: λ >> 1
        // (communication time expanded because the sender started late).
        assert!(p.procs[1].lambda > 10.0);
        // Rank 0 never blocked: λ = 0.
        assert_eq!(p.procs[0].lambda, 0.0);
    }

    #[test]
    fn theta_uses_mapping_nodes() {
        let c = two_switch_demo();
        let sends = vec![MessageGroup {
            peer: 1,
            bytes: 1024,
            count: 5,
        }];
        // Same-switch mapping vs cross-switch mapping.
        let near = theta(0, &sends, &[], &[NodeId(0), NodeId(1)], &c);
        let far = theta(0, &sends, &[], &[NodeId(0), NodeId(4)], &c);
        assert!(far > near);
        let per_msg = c.no_load_latency(NodeId(0), NodeId(4), 1024);
        assert!((far - 5.0 * per_msg).abs() < 1e-15);
    }

    #[test]
    fn profile_speed_comes_from_profiling_node() {
        let c = two_switch_demo();
        // Node 4 is an Intel node with speed 0.85.
        let mapping = [NodeId(4), NodeId(1)];
        let p = extract_profile("t", &sample_trace(), &c, &mapping, &c);
        assert!((p.procs[0].profile_speed - 0.85).abs() < 1e-12);
        assert!((p.procs[1].profile_speed - 1.0).abs() < 1e-12);
    }

    #[test]
    fn segment_extraction_splits_events() {
        let c = two_switch_demo();
        let mapping = [NodeId(0)];
        let mut r0 = RankTrace::new(0, NodeId(0));
        r0.events = vec![
            TraceEvent::Compute {
                start: 0.0,
                dur: 1.0,
            },
            TraceEvent::Segment { t: 1.0, id: 1 },
            TraceEvent::Compute {
                start: 1.0,
                dur: 3.0,
            },
        ];
        r0.end = 4.0;
        let t = Trace {
            ranks: vec![r0],
            wall_time: 4.0,
        };
        let segs = extract_segment_profiles("app", &t, &c, &mapping, &c);
        assert_eq!(segs.len(), 2);
        assert!((segs[&0].procs[0].x - 1.0).abs() < 1e-12);
        assert!((segs[&1].procs[0].x - 3.0).abs() < 1e-12);
        assert_eq!(segs[&1].name, "app#1");
    }

    #[test]
    #[should_panic(expected = "mapping must cover")]
    fn mismatched_mapping_panics() {
        let c = two_switch_demo();
        let _ = extract_profile("t", &sample_trace(), &c, &[NodeId(0)], &c);
    }
}
