//! Post-mortem trace statistics — the "examine application behaviour"
//! side of the paper's XMPI-based tooling: communication matrices,
//! utilisation breakdowns, and imbalance metrics.

use crate::event::TraceEvent;
use crate::Trace;

/// Per-rank utilisation breakdown over the run's wall time.
#[derive(Debug, Clone, PartialEq)]
pub struct RankUtilisation {
    /// Rank.
    pub rank: usize,
    /// Fraction of wall time computing.
    pub compute: f64,
    /// Fraction of wall time in messaging overhead.
    pub overhead: f64,
    /// Fraction of wall time blocked.
    pub blocked: f64,
    /// Fraction of wall time idle after finishing.
    pub tail_idle: f64,
}

/// Aggregate statistics over one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Wall time of the run.
    pub wall_time: f64,
    /// Per-rank utilisation, indexed by rank.
    pub utilisation: Vec<RankUtilisation>,
    /// `matrix[src * n + dst]` = total bytes sent from `src` to `dst`.
    pub bytes_matrix: Vec<u64>,
    /// `counts[src * n + dst]` = messages sent from `src` to `dst`.
    pub count_matrix: Vec<u64>,
}

impl TraceStats {
    /// Compute statistics from a trace.
    pub fn from_trace(trace: &Trace) -> Self {
        let n = trace.num_ranks();
        let wall = trace.wall_time.max(f64::MIN_POSITIVE);
        let mut bytes_matrix = vec![0u64; n * n];
        let mut count_matrix = vec![0u64; n * n];
        let mut utilisation = Vec::with_capacity(n);
        for rt in &trace.ranks {
            let (x, o, b) = rt.totals();
            utilisation.push(RankUtilisation {
                rank: rt.rank,
                compute: x / wall,
                overhead: o / wall,
                blocked: b / wall,
                tail_idle: (wall - rt.end).max(0.0) / wall,
            });
            for e in &rt.events {
                if let TraceEvent::Send { to, bytes, .. } = e {
                    bytes_matrix[rt.rank * n + to] += bytes;
                    count_matrix[rt.rank * n + to] += 1;
                }
            }
        }
        TraceStats {
            wall_time: trace.wall_time,
            utilisation,
            bytes_matrix,
            count_matrix,
        }
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.utilisation.len()
    }

    /// Total payload bytes exchanged.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_matrix.iter().sum()
    }

    /// Total message count.
    pub fn total_messages(&self) -> u64 {
        self.count_matrix.iter().sum()
    }

    /// Computation-imbalance ratio: max over mean of per-rank compute time.
    /// 1.0 = perfectly balanced.
    pub fn compute_imbalance(&self) -> f64 {
        let xs: Vec<f64> = self.utilisation.iter().map(|u| u.compute).collect();
        let mean = xs.iter().sum::<f64>() / xs.len().max(1) as f64;
        let max = xs.iter().copied().fold(0.0f64, f64::max);
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }

    /// The ordered rank pairs exchanging the most bytes (the "hot edges" a
    /// good mapping co-locates), sorted descending, at most `k`.
    pub fn hottest_pairs(&self, k: usize) -> Vec<(usize, usize, u64)> {
        let n = self.num_ranks();
        let mut pairs: Vec<(usize, usize, u64)> = (0..n)
            .flat_map(|s| (0..n).map(move |d| (s, d)))
            .filter(|&(s, d)| s != d)
            .map(|(s, d)| (s, d, self.bytes_matrix[s * n + d]))
            .filter(|&(_, _, b)| b > 0)
            .collect();
        pairs.sort_by_key(|&(_, _, b)| std::cmp::Reverse(b));
        pairs.truncate(k);
        pairs
    }

    /// Render the byte matrix as a small text heat table.
    pub fn render_matrix(&self) -> String {
        let n = self.num_ranks();
        let mut out = String::from("bytes sent (rows = src, cols = dst):\n      ");
        for d in 0..n {
            out.push_str(&format!("{d:>9}"));
        }
        out.push('\n');
        for s in 0..n {
            out.push_str(&format!("  r{s:<3}"));
            for d in 0..n {
                out.push_str(&format!("{:>9}", self.bytes_matrix[s * n + d]));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::RankTrace;
    use cbes_cluster::NodeId;

    fn sample() -> Trace {
        let mut r0 = RankTrace::new(0, NodeId(0));
        r0.events = vec![
            TraceEvent::Compute {
                start: 0.0,
                dur: 6.0,
            },
            TraceEvent::Send {
                t: 6.0,
                to: 1,
                bytes: 1000,
            },
            TraceEvent::Send {
                t: 6.0,
                to: 1,
                bytes: 1000,
            },
            TraceEvent::Send {
                t: 6.0,
                to: 2,
                bytes: 500,
            },
        ];
        r0.end = 6.1;
        let mut r1 = RankTrace::new(1, NodeId(1));
        r1.events = vec![
            TraceEvent::Compute {
                start: 0.0,
                dur: 2.0,
            },
            TraceEvent::Blocked {
                start: 2.0,
                dur: 4.0,
            },
            TraceEvent::Recv {
                t: 6.0,
                from: 0,
                bytes: 1000,
            },
            TraceEvent::Recv {
                t: 6.0,
                from: 0,
                bytes: 1000,
            },
        ];
        r1.end = 6.0;
        let mut r2 = RankTrace::new(2, NodeId(2));
        r2.events = vec![TraceEvent::Compute {
            start: 0.0,
            dur: 3.0,
        }];
        r2.end = 3.0;
        Trace {
            ranks: vec![r0, r1, r2],
            wall_time: 10.0,
        }
    }

    #[test]
    fn matrices_accumulate_per_pair() {
        let s = TraceStats::from_trace(&sample());
        assert_eq!(s.bytes_matrix[1], 2000); // 0 -> 1
        assert_eq!(s.count_matrix[1], 2);
        assert_eq!(s.bytes_matrix[2], 500); // 0 -> 2
        assert_eq!(s.total_bytes(), 2500);
        assert_eq!(s.total_messages(), 3);
    }

    #[test]
    fn utilisation_fractions_are_sane() {
        let s = TraceStats::from_trace(&sample());
        let u0 = &s.utilisation[0];
        assert!((u0.compute - 0.6).abs() < 1e-12);
        assert!((u0.tail_idle - 0.39).abs() < 1e-12);
        let u1 = &s.utilisation[1];
        assert!((u1.blocked - 0.4).abs() < 1e-12);
    }

    #[test]
    fn imbalance_ratio() {
        let s = TraceStats::from_trace(&sample());
        // Compute times 6, 2, 3 -> mean 3.667, max 6 -> ratio ~1.64.
        assert!((s.compute_imbalance() - 6.0 / (11.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn hottest_pairs_sorted() {
        let s = TraceStats::from_trace(&sample());
        let hot = s.hottest_pairs(2);
        assert_eq!(hot[0], (0, 1, 2000));
        assert_eq!(hot[1], (0, 2, 500));
        assert_eq!(s.hottest_pairs(10).len(), 2);
    }

    #[test]
    fn matrix_renders_all_rows() {
        let s = TraceStats::from_trace(&sample());
        let text = s.render_matrix();
        // Title line + column-header line + one line per rank.
        assert_eq!(text.lines().count(), 2 + 3);
        assert!(text.contains("2000"));
    }
}
