//! Execution traces and application profiles.
//!
//! The paper profiles applications by analysing LAM/MPI execution traces with
//! a modified XMPI: the trace is reduced to *cumulative* per-process
//! quantities — own-code execution time `X_i`, message-passing overhead
//! `O_i`, blocked time `B_i` — plus, per peer, groups of same-size messages
//! sent and received. This crate defines the trace representation our
//! simulator emits ([`Trace`]) and the reduction into an [`AppProfile`]
//! ([`extract_profile`]), including the correction factor
//! `λ_i = B_i / Θ_i^profile` of paper eq. 7.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod event;
pub mod profile;
pub mod stats;

pub use analyze::{extract_profile, extract_segment_profiles};
pub use event::{RankTrace, TraceEvent};
pub use profile::{merge_profiles, AppProfile, MessageGroup, ProcessProfile};
pub use stats::TraceStats;

use serde::{Deserialize, Serialize};

/// A complete execution trace: one event stream per rank plus the measured
/// wall time (the "actual execution time" of the paper's experiments).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Per-rank event streams, indexed by rank.
    pub ranks: Vec<RankTrace>,
    /// End-to-end wall time of the traced run, in seconds.
    pub wall_time: f64,
}

impl Trace {
    /// Number of ranks in the trace.
    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// Serialise to JSON (durable profile/trace storage, as the paper's
    /// database tables would).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serialisation cannot fail")
    }

    /// Parse a trace back from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbes_cluster::NodeId;

    #[test]
    fn trace_json_roundtrip() {
        let t = Trace {
            ranks: vec![RankTrace {
                rank: 0,
                node: NodeId(3),
                events: vec![
                    TraceEvent::Compute {
                        start: 0.0,
                        dur: 1.5,
                    },
                    TraceEvent::Send {
                        t: 1.5,
                        to: 1,
                        bytes: 4096,
                    },
                ],
                end: 1.6,
            }],
            wall_time: 1.6,
        };
        let back = Trace::from_json(&t.to_json()).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.num_ranks(), 1);
    }
}
