//! Property tests over random lifecycle transition sequences: whatever
//! order of stage/apply/accept/rollback verbs arrives, the state
//! machine never reaches accept-without-soak, never has two artifacts
//! active at once, and rejected transitions leave the state untouched.
//!
//! The vendored proptest stand-in draws numeric strategies only, so
//! each case draws a seed and a length and expands them into an op
//! sequence through a seeded RNG — fully deterministic per case.

use cbes_reconfig::{ArtifactKind, Lifecycle, LifecycleError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

#[derive(Debug, Clone, Copy)]
enum Op {
    Stage(ArtifactKind),
    Apply,
    Accept,
    Rollback,
}

fn ops_from_seed(seed: u64, len: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| match rng.random_range(0u32..6) {
            0 => Op::Stage(ArtifactKind::LatencyModel),
            1 => Op::Stage(ArtifactKind::ClusterPreset),
            2 => Op::Stage(ArtifactKind::ServingLimits),
            3 => Op::Apply,
            4 => Op::Accept,
            _ => Op::Rollback,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_sequences_preserve_the_invariants(
        seed in 0u64..u64::MAX,
        len in 1usize..60,
    ) {
        let mut l = Lifecycle::new();
        // Soak/accept bookkeeping mirrored independently of the
        // implementation, so the invariants are externally checked,
        // not read back from the code under test.
        let mut soak_open = false;
        let mut last_accepted: Option<u64> = None;

        for op in ops_from_seed(seed, len) {
            let before = l.clone();
            match op {
                Op::Stage(kind) => {
                    let record = l.plan_stage(kind);
                    prop_assert!(l.commit(&record).is_ok());
                    // Staging never touches the serving side.
                    prop_assert_eq!(l.soaking().is_some(), soak_open);
                    prop_assert_eq!(l.active().map(|a| a.version), last_accepted);
                }
                Op::Apply => {
                    match l.plan_apply() {
                        Ok(record) => {
                            // Never double-active: an apply can only
                            // succeed when no soak is in progress.
                            prop_assert!(!soak_open, "apply accepted during a soak");
                            prop_assert!(before.staged().is_some());
                            prop_assert!(l.commit(&record).is_ok());
                            soak_open = true;
                        }
                        Err(e) => {
                            prop_assert!(matches!(
                                e,
                                LifecycleError::NothingStaged
                                    | LifecycleError::SoakInProgress { .. }
                            ));
                            prop_assert_eq!(&l, &before, "rejected apply mutated state");
                        }
                    }
                }
                Op::Accept => {
                    match l.plan_accept() {
                        Ok(record) => {
                            // Never accept-without-soak.
                            prop_assert!(soak_open, "accept accepted without a soak");
                            prop_assert!(l.commit(&record).is_ok());
                            soak_open = false;
                            last_accepted = Some(record.version);
                        }
                        Err(e) => {
                            prop_assert_eq!(e, LifecycleError::NothingSoaking);
                            prop_assert_eq!(&l, &before, "rejected accept mutated state");
                        }
                    }
                }
                Op::Rollback => {
                    match l.plan_rollback("prop", true) {
                        Ok(record) => {
                            prop_assert!(soak_open, "rollback accepted without a soak");
                            // Rollback falls back to the accepted
                            // config, never anything else.
                            prop_assert_eq!(record.previous, last_accepted.unwrap_or(0));
                            prop_assert!(l.commit(&record).is_ok());
                            soak_open = false;
                        }
                        Err(e) => {
                            prop_assert_eq!(e, LifecycleError::NothingSoaking);
                            prop_assert_eq!(&l, &before, "rejected rollback mutated state");
                        }
                    }
                }
            }

            // Global invariants after every step.
            prop_assert_eq!(l.soaking().is_some(), soak_open);
            prop_assert_eq!(l.active().map(|a| a.version), last_accepted);
            // Exactly one artifact serves: the soaking one shadows the
            // accepted one; with no soak the accepted artifact serves.
            let serving = l.serving().map(|a| a.version);
            if soak_open {
                prop_assert_eq!(serving, l.soaking().map(|s| s.artifact.version));
            } else {
                prop_assert_eq!(serving, last_accepted);
            }
        }
    }

    /// Replaying any sequence's journal records from scratch
    /// reconstructs the same state (replay = commit, so this is the
    /// crash-recovery path on random histories).
    #[test]
    fn replaying_committed_records_reconstructs_the_state(
        seed in 0u64..u64::MAX,
        len in 1usize..40,
    ) {
        let mut l = Lifecycle::new();
        let mut journal = Vec::new();
        for op in ops_from_seed(seed, len) {
            let planned = match op {
                Op::Stage(kind) => Some(l.plan_stage(kind)),
                Op::Apply => l.plan_apply().ok(),
                Op::Accept => l.plan_accept().ok(),
                Op::Rollback => l.plan_rollback("prop", false).ok(),
            };
            if let Some(record) = planned {
                prop_assert!(l.commit(&record).is_ok());
                journal.push(record);
            }
        }
        let mut replayed = Lifecycle::new();
        for record in &journal {
            prop_assert!(replayed.commit(record).is_ok());
        }
        prop_assert_eq!(replayed, l);
    }
}
