//! Kill -9 crash-recovery suite: a child process drives a fixed
//! lifecycle sequence against a scratch store with one fail point armed
//! (see `cbes_faults::fail_point`), aborts mid-write, and the parent
//! reopens the store and asserts the recovered state is exactly the
//! state whose journal records reached disk — never anything in
//! between.
//!
//! The child is this same test binary re-executed with
//! `--exact crash_helper_drives_the_store`; the helper test is a no-op
//! unless `CBES_RECONFIG_CRASH_DIR` is set.

use std::path::PathBuf;
use std::process::Command;

use cbes_reconfig::{ArtifactKind, ArtifactStore, WRITE_POINTS};

const CRASH_DIR_ENV: &str = "CBES_RECONFIG_CRASH_DIR";

fn limits_payload(rps: f64) -> String {
    format!("{{\"max_rps\": {rps}, \"shed_retry_after_ms\": 10}}")
}

/// The fixed sequence both sides agree on: a full accept cycle for v1,
/// then an apply + rollback cycle for v2. Each step is attempted in
/// order; with a fail point armed the child aborts inside one of them.
fn drive_sequence(store: &ArtifactStore) {
    let _ = store.stage(ArtifactKind::ServingLimits, &limits_payload(100.0), None);
    let _ = store.apply();
    let _ = store.accept();
    let _ = store.stage(ArtifactKind::ServingLimits, &limits_payload(50.0), None);
    let _ = store.apply();
    let _ = store.rollback("crash-suite rollback", false);
}

/// Child-process entry point; a no-op in a normal test run.
#[test]
fn crash_helper_drives_the_store() {
    let Ok(dir) = std::env::var(CRASH_DIR_ENV) else {
        return;
    };
    let store = ArtifactStore::open(PathBuf::from(dir)).expect("child opens store");
    drive_sequence(&store);
    // With a fail point armed the sequence never gets here; without one
    // (defensive) the parent will notice the clean exit and fail.
}

/// Expected recovered lifecycle per fail point, expressed as
/// `(journal_records, staged, soaking, active)` versions (0 = none).
fn expected_after(point: &str) -> (u64, u64, u64, u64) {
    match point {
        // Payload writes precede the stage record: nothing journalled.
        "reconfig.stage.payload_tmp" => (0, 0, 0, 0),
        "reconfig.stage.payload_renamed" => (0, 0, 0, 0),
        "reconfig.journal.stage.pre" => (0, 0, 0, 0),
        "reconfig.journal.stage.post" => (1, 1, 0, 0),
        "reconfig.journal.apply.pre" => (1, 1, 0, 0),
        "reconfig.journal.apply.post" => (2, 0, 1, 0),
        "reconfig.journal.accept.pre" => (2, 0, 1, 0),
        "reconfig.journal.accept.post" => (3, 0, 0, 1),
        // The rollback points are first reached in the v2 cycle.
        "reconfig.journal.rollback.pre" => (5, 0, 2, 1),
        "reconfig.journal.rollback.post" => (6, 0, 0, 1),
        other => panic!("no expectation for write point {other}"),
    }
}

#[test]
fn recovery_at_every_write_point() {
    let exe = std::env::current_exe().expect("test binary path");
    for (i, point) in WRITE_POINTS.iter().enumerate() {
        let dir =
            std::env::temp_dir().join(format!("cbes-reconfig-crash-{i}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");

        let status = Command::new(&exe)
            .arg("--exact")
            .arg("crash_helper_drives_the_store")
            .arg("--nocapture")
            .env(CRASH_DIR_ENV, &dir)
            .env(cbes_faults::FAIL_POINT_ENV, point)
            .status()
            .expect("spawn crash child");
        assert!(
            !status.success(),
            "fail point {point} did not kill the child (status {status})"
        );

        let store = ArtifactStore::open(&dir)
            .unwrap_or_else(|e| panic!("recovery after {point} failed: {e}"));
        let status = store.status();
        let (records, staged, soaking, active) = expected_after(point);
        assert_eq!(
            status.journal_records, records,
            "journal records after {point}"
        );
        assert_eq!(
            status.staged.as_ref().map_or(0, |a| a.version),
            staged,
            "staged version after {point}"
        );
        assert_eq!(
            status.soaking.as_ref().map_or(0, |s| s.version),
            soaking,
            "soaking version after {point}"
        );
        assert_eq!(
            status.active.as_ref().map_or(0, |a| a.version),
            active,
            "active version after {point}"
        );

        // The recovered store must remain fully usable: finish whatever
        // the crash interrupted, then run one more full accept cycle.
        if store.soaking().is_some() {
            store
                .rollback("post-crash cleanup", false)
                .unwrap_or_else(|e| panic!("rollback after {point}: {e}"));
        }
        let v = store
            .stage(ArtifactKind::ServingLimits, &limits_payload(75.0), None)
            .unwrap_or_else(|e| panic!("stage after {point}: {e}"));
        store
            .apply()
            .unwrap_or_else(|e| panic!("apply after {point}: {e}"));
        store
            .accept()
            .unwrap_or_else(|e| panic!("accept after {point}: {e}"));
        assert_eq!(store.active().map(|a| a.version), Some(v));

        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn clean_sequence_leaves_a_replayable_journal() {
    let dir =
        std::env::temp_dir().join(format!("cbes-reconfig-crash-clean-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let store = ArtifactStore::open(&dir).expect("open");
        drive_sequence(&store);
        assert_eq!(store.status().journal_records, 6);
    }
    let store = ArtifactStore::open(&dir).expect("replay");
    let status = store.status();
    assert_eq!(status.journal_records, 6);
    assert_eq!(status.active.map(|a| a.version), Some(1));
    assert_eq!(status.soaking, None);
    assert_eq!(status.last_rollback.map(|r| r.version), Some(2));
    let _ = std::fs::remove_dir_all(&dir);
}
