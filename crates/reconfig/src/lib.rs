//! `cbes-reconfig`: zero-downtime live reconfiguration for the CBES
//! serving tier.
//!
//! The paper's premise is a *continuously recalibrated* estimating
//! service — load sweeps and latency calibration keep feeding eq. 5/6/8
//! — yet a daemon that fixes its calibration model, cluster preset, and
//! serving limits at process start pays a restart (and a window of lost
//! requests) for every refresh. This crate closes that gap with a
//! syscare-style hot-patch lifecycle over *configuration artifacts*:
//!
//! ```text
//!   stage → apply → (soak) → accept
//!                      └───→ rollback
//! ```
//!
//! * [`ArtifactStore`] persists versioned artifact payloads crash-safely
//!   (write-temp + fsync + atomic rename) plus an append-only lifecycle
//!   journal; reopening the store replays the journal and recovers the
//!   exact staged/soaking/active state, so a `kill -9` at any write
//!   point never leaves a half-flipped config.
//! * [`Lifecycle`] is the pure state machine behind the store: every
//!   durable mutation is planned, journalled, then committed, and
//!   replay re-validates each record, so `accept` without a soak or a
//!   second concurrent activation is impossible by construction.
//! * Artifact kinds ([`ArtifactKind`]) cover calibrated latency models,
//!   cluster topology presets, and serving/admission limits
//!   ([`ServingLimits`]); payloads are validated at stage time against
//!   the running cluster's node count.
//!
//! Activation itself (the atomic epoch bump on the serving snapshot
//! path) and the telemetry-driven soak monitor live in `cbes-server`,
//! which drives this store; the router broadcasts the lifecycle verbs
//! tier-wide so one CLI call reconfigures every instance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lifecycle;
pub mod report;
pub mod store;

pub use lifecycle::{
    ArtifactKind, ArtifactRef, JournalRecord, Lifecycle, LifecycleError, RollbackNote, Soak,
};
pub use report::{
    ArtifactEntry, ArtifactSummary, InstanceStatus, LifecycleStatus, RollbackReport, SoakSummary,
    StatusReport,
};
pub use store::{
    validate_payload, Applied, ArtifactStore, ReconfigError, RolledBack, ServingLimits,
    WRITE_POINTS,
};
