//! Serialisable lifecycle status reports, carried by the
//! `artifact_status` protocol action and merged tier-wide by the
//! router (one [`InstanceStatus`] per instance).

use serde::{Deserialize, Serialize};

/// A short reference to one artifact version.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArtifactSummary {
    /// Store-assigned version.
    pub version: u64,
    /// Artifact kind name.
    pub kind: String,
}

/// The soak in progress.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoakSummary {
    /// The provisionally active version.
    pub version: u64,
    /// Artifact kind name.
    pub kind: String,
    /// Version to fall back to on rollback (`0` = boot config).
    pub previous: u64,
}

/// The most recent rollback.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RollbackReport {
    /// The version that was rolled back.
    pub version: u64,
    /// Operator- or monitor-supplied reason.
    pub reason: String,
    /// `true` when the soak monitor fired it.
    pub auto: bool,
}

/// One artifact the store has ever staged, with its lifecycle state
/// (`staged`, `soaking`, `active`, `rolled_back`, or `retired`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArtifactEntry {
    /// Store-assigned version.
    pub version: u64,
    /// Artifact kind name.
    pub kind: String,
    /// Current lifecycle state.
    pub state: String,
}

/// One store's full lifecycle snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifecycleStatus {
    /// The artifact waiting to be applied, if any.
    pub staged: Option<ArtifactSummary>,
    /// The soak in progress, if any.
    pub soaking: Option<SoakSummary>,
    /// The durably accepted artifact, if any.
    pub active: Option<ArtifactSummary>,
    /// The most recent rollback, if any.
    pub last_rollback: Option<RollbackReport>,
    /// Journal records replayed/appended so far.
    pub journal_records: u64,
    /// Every version ever staged, in version order.
    pub artifacts: Vec<ArtifactEntry>,
}

/// One serving instance's lifecycle status, as reported on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceStatus {
    /// The instance's listen address.
    pub addr: String,
    /// Whether the instance has a state directory at all (a daemon
    /// started without `--state-dir` reports `false` and an empty
    /// status).
    pub reconfigurable: bool,
    /// The instance's lifecycle snapshot.
    pub status: LifecycleStatus,
}

/// The tier-wide artifact status: one entry per instance. A standalone
/// daemon reports a single entry for itself; the router concatenates
/// entries from every instance it reaches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusReport {
    /// Per-instance statuses, sorted by address after a tier merge.
    pub instances: Vec<InstanceStatus>,
}

impl LifecycleStatus {
    /// The empty status of a daemon with no artifact store.
    pub fn empty() -> LifecycleStatus {
        LifecycleStatus {
            staged: None,
            soaking: None,
            active: None,
            last_rollback: None,
            journal_records: 0,
            artifacts: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_report_round_trips() {
        let report = StatusReport {
            instances: vec![InstanceStatus {
                addr: "127.0.0.1:7000".to_string(),
                reconfigurable: true,
                status: LifecycleStatus {
                    staged: Some(ArtifactSummary {
                        version: 3,
                        kind: "latency_model".to_string(),
                    }),
                    soaking: Some(SoakSummary {
                        version: 2,
                        kind: "latency_model".to_string(),
                        previous: 1,
                    }),
                    active: Some(ArtifactSummary {
                        version: 1,
                        kind: "serving_limits".to_string(),
                    }),
                    last_rollback: None,
                    journal_records: 7,
                    artifacts: vec![ArtifactEntry {
                        version: 1,
                        kind: "serving_limits".to_string(),
                        state: "active".to_string(),
                    }],
                },
            }],
        };
        let json = serde_json::to_string(&report).expect("encodes");
        let back: StatusReport = serde_json::from_str(&json).expect("decodes");
        assert_eq!(back, report);
    }
}
