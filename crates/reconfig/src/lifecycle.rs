//! The artifact lifecycle state machine, pure and I/O-free.
//!
//! Every durable mutation of the store is first *planned* against this
//! state machine (producing a [`JournalRecord`]), then persisted to the
//! journal, then *committed* back into it. Replay after a crash commits
//! the surviving records in order, so the recovered state is exactly the
//! prefix of the lifecycle that reached disk — never a half-applied
//! transition.
//!
//! Invariants enforced by [`Lifecycle::commit`] (and therefore by
//! replay):
//!
//! * at most one artifact is soaking at a time (`apply` while a soak is
//!   in progress is rejected — no "double active");
//! * `accept` and `rollback` require a soak in progress (`accept`
//!   without a preceding `apply` is rejected);
//! * the accepted artifact only ever changes through `accept`.

use serde::{Deserialize, Serialize};

/// Journal operation names, the closed vocabulary of [`JournalRecord::op`].
pub mod op {
    /// A new artifact version was staged.
    pub const STAGE: &str = "stage";
    /// The staged artifact was activated and entered its soak window.
    pub const APPLY: &str = "apply";
    /// The soaking artifact was accepted as the durable active config.
    pub const ACCEPT: &str = "accept";
    /// The soaking artifact was reverted to the previous active config.
    pub const ROLLBACK: &str = "rollback";
}

/// What kind of configuration an artifact carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// A calibrated [`cbes_netmodel::LatencyModel`] table.
    LatencyModel,
    /// A [`cbes_cluster::ClusterSpec`] topology preset.
    ClusterPreset,
    /// Serving/admission limits (rate cap, shed back-off hint).
    ServingLimits,
}

impl ArtifactKind {
    /// The wire/journal name of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            ArtifactKind::LatencyModel => "latency_model",
            ArtifactKind::ClusterPreset => "cluster_preset",
            ArtifactKind::ServingLimits => "serving_limits",
        }
    }

    /// Parse a wire/journal kind name.
    pub fn parse(s: &str) -> Option<ArtifactKind> {
        match s {
            "latency_model" => Some(ArtifactKind::LatencyModel),
            "cluster_preset" => Some(ArtifactKind::ClusterPreset),
            "serving_limits" => Some(ArtifactKind::ServingLimits),
            _ => None,
        }
    }
}

impl std::fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One append-only journal entry. All fields are always present on the
/// wire; fields irrelevant to an `op` hold their zero value (`0`, `""`,
/// `false`), so the record round-trips through the vendored serde derive
/// without optional-field machinery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalRecord {
    /// One of the [`op`] names.
    pub op: String,
    /// The artifact version the operation concerns.
    pub version: u64,
    /// Artifact kind name (`stage` records only, `""` otherwise).
    pub kind: String,
    /// For `apply`/`rollback`: the previously active version
    /// (`0` = the boot-time configuration).
    pub previous: u64,
    /// For `rollback`: the operator- or monitor-supplied reason.
    pub reason: String,
    /// For `rollback`: `true` when the soak monitor fired it.
    pub auto: bool,
}

impl JournalRecord {
    fn new(op: &str, version: u64) -> JournalRecord {
        JournalRecord {
            op: op.to_string(),
            version,
            kind: String::new(),
            previous: 0,
            reason: String::new(),
            auto: false,
        }
    }
}

/// A typed rejection of a lifecycle transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LifecycleError {
    /// `apply` with no staged artifact.
    NothingStaged,
    /// `apply` while another artifact is still soaking.
    SoakInProgress {
        /// The version currently soaking.
        soaking: u64,
    },
    /// `accept` or `rollback` with no soak in progress.
    NothingSoaking,
    /// A journal record that no valid transition could have produced
    /// (corrupt or hand-edited journal).
    BadRecord {
        /// Why the record was rejected.
        detail: String,
    },
}

impl std::fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LifecycleError::NothingStaged => write!(f, "no artifact is staged"),
            LifecycleError::SoakInProgress { soaking } => {
                write!(
                    f,
                    "artifact v{soaking} is still soaking; accept or roll it back first"
                )
            }
            LifecycleError::NothingSoaking => write!(f, "no artifact is soaking"),
            LifecycleError::BadRecord { detail } => write!(f, "invalid journal record: {detail}"),
        }
    }
}

impl std::error::Error for LifecycleError {}

/// An artifact's identity within the lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArtifactRef {
    /// Monotonic store-assigned version (starts at 1; 0 = boot config).
    pub version: u64,
    /// What the artifact carries.
    pub kind: ArtifactKind,
}

/// The soak in progress: which artifact is serving provisionally and
/// what to fall back to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Soak {
    /// The provisionally active artifact.
    pub artifact: ArtifactRef,
    /// The previously active version (`0` = boot config).
    pub previous: u64,
}

/// A sticky note about the most recent rollback, for status reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RollbackNote {
    /// The version that was rolled back.
    pub version: u64,
    /// Operator- or monitor-supplied reason.
    pub reason: String,
    /// `true` when the soak monitor fired it.
    pub auto: bool,
}

/// The replayable lifecycle state. See the module docs for invariants.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Lifecycle {
    highest_version: u64,
    staged: Option<ArtifactRef>,
    soaking: Option<Soak>,
    active: Option<ArtifactRef>,
    kinds: std::collections::BTreeMap<u64, ArtifactKind>,
    rolled_back: std::collections::BTreeSet<u64>,
    last_rollback: Option<RollbackNote>,
    records: u64,
}

impl Lifecycle {
    /// A fresh lifecycle with nothing staged, soaking, or active.
    pub fn new() -> Lifecycle {
        Lifecycle::default()
    }

    /// The artifact waiting to be applied, if any.
    pub fn staged(&self) -> Option<ArtifactRef> {
        self.staged
    }

    /// The soak in progress, if any.
    pub fn soaking(&self) -> Option<Soak> {
        self.soaking
    }

    /// The durably accepted artifact, if any.
    pub fn active(&self) -> Option<ArtifactRef> {
        self.active
    }

    /// The artifact a request is served under right now: the soaking
    /// artifact when a soak is in progress, the accepted one otherwise.
    pub fn serving(&self) -> Option<ArtifactRef> {
        self.soaking.map(|s| s.artifact).or(self.active)
    }

    /// The most recent rollback, if any.
    pub fn last_rollback(&self) -> Option<&RollbackNote> {
        self.last_rollback.as_ref()
    }

    /// How many journal records produced this state.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Kind of a known version.
    pub fn kind_of(&self, version: u64) -> Option<ArtifactKind> {
        self.kinds.get(&version).copied()
    }

    /// Every version the store has ever staged, with its current state
    /// (`staged`, `soaking`, `active`, `rolled_back`, or `retired`).
    pub fn entries(&self) -> Vec<(u64, ArtifactKind, &'static str)> {
        self.kinds
            .iter()
            .map(|(&v, &kind)| {
                let state = if self.staged.is_some_and(|a| a.version == v) {
                    "staged"
                } else if self.soaking.is_some_and(|s| s.artifact.version == v) {
                    "soaking"
                } else if self.active.is_some_and(|a| a.version == v) {
                    "active"
                } else if self.rolled_back.contains(&v) {
                    "rolled_back"
                } else {
                    "retired"
                };
                (v, kind, state)
            })
            .collect()
    }

    /// Plan staging a new artifact: allocates the next version. Staging
    /// is always legal and replaces any previously staged artifact.
    pub fn plan_stage(&self, kind: ArtifactKind) -> JournalRecord {
        let mut record = JournalRecord::new(op::STAGE, self.highest_version + 1);
        record.kind = kind.as_str().to_string();
        record
    }

    /// Plan activating the staged artifact (entering its soak window).
    pub fn plan_apply(&self) -> Result<JournalRecord, LifecycleError> {
        if let Some(soak) = self.soaking {
            return Err(LifecycleError::SoakInProgress {
                soaking: soak.artifact.version,
            });
        }
        let staged = self.staged.ok_or(LifecycleError::NothingStaged)?;
        let mut record = JournalRecord::new(op::APPLY, staged.version);
        record.previous = self.active.map_or(0, |a| a.version);
        Ok(record)
    }

    /// Plan accepting the soaking artifact as the durable active config.
    pub fn plan_accept(&self) -> Result<JournalRecord, LifecycleError> {
        let soak = self.soaking.ok_or(LifecycleError::NothingSoaking)?;
        Ok(JournalRecord::new(op::ACCEPT, soak.artifact.version))
    }

    /// Plan rolling the soaking artifact back to the previous config.
    pub fn plan_rollback(&self, reason: &str, auto: bool) -> Result<JournalRecord, LifecycleError> {
        let soak = self.soaking.ok_or(LifecycleError::NothingSoaking)?;
        let mut record = JournalRecord::new(op::ROLLBACK, soak.artifact.version);
        record.previous = soak.previous;
        record.reason = reason.to_string();
        record.auto = auto;
        Ok(record)
    }

    /// Apply one journal record. Used both to commit a freshly planned
    /// record and to replay the journal after a restart; the same
    /// validation runs in both paths, so a journal that violates the
    /// lifecycle invariants is rejected instead of silently adopted.
    pub fn commit(&mut self, record: &JournalRecord) -> Result<(), LifecycleError> {
        match record.op.as_str() {
            op::STAGE => {
                let kind =
                    ArtifactKind::parse(&record.kind).ok_or_else(|| LifecycleError::BadRecord {
                        detail: format!("unknown artifact kind \"{}\"", record.kind),
                    })?;
                if record.version <= self.highest_version {
                    return Err(LifecycleError::BadRecord {
                        detail: format!(
                            "stage version {} is not above the high-water mark {}",
                            record.version, self.highest_version
                        ),
                    });
                }
                self.highest_version = record.version;
                let artifact = ArtifactRef {
                    version: record.version,
                    kind,
                };
                self.staged = Some(artifact);
                self.kinds.insert(record.version, kind);
            }
            op::APPLY => {
                let planned = self.plan_apply()?;
                if planned.version != record.version || planned.previous != record.previous {
                    return Err(LifecycleError::BadRecord {
                        detail: format!(
                            "apply of v{} (previous v{}) does not match the staged state",
                            record.version, record.previous
                        ),
                    });
                }
                let staged = self.staged.take().ok_or(LifecycleError::NothingStaged)?;
                self.soaking = Some(Soak {
                    artifact: staged,
                    previous: record.previous,
                });
            }
            op::ACCEPT => {
                let soak = self.soaking.ok_or(LifecycleError::NothingSoaking)?;
                if soak.artifact.version != record.version {
                    return Err(LifecycleError::BadRecord {
                        detail: format!(
                            "accept of v{} but v{} is soaking",
                            record.version, soak.artifact.version
                        ),
                    });
                }
                self.active = Some(soak.artifact);
                self.soaking = None;
            }
            op::ROLLBACK => {
                let soak = self.soaking.ok_or(LifecycleError::NothingSoaking)?;
                if soak.artifact.version != record.version {
                    return Err(LifecycleError::BadRecord {
                        detail: format!(
                            "rollback of v{} but v{} is soaking",
                            record.version, soak.artifact.version
                        ),
                    });
                }
                self.soaking = None;
                self.rolled_back.insert(record.version);
                self.last_rollback = Some(RollbackNote {
                    version: record.version,
                    reason: record.reason.clone(),
                    auto: record.auto,
                });
            }
            other => {
                return Err(LifecycleError::BadRecord {
                    detail: format!("unknown op \"{other}\""),
                });
            }
        }
        self.records += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn staged(l: &mut Lifecycle, kind: ArtifactKind) -> u64 {
        let r = l.plan_stage(kind);
        let v = r.version;
        l.commit(&r).expect("stage commits");
        v
    }

    #[test]
    fn full_accept_cycle() {
        let mut l = Lifecycle::new();
        let v = staged(&mut l, ArtifactKind::LatencyModel);
        assert_eq!(v, 1);
        let apply = l.plan_apply().expect("staged");
        assert_eq!(apply.previous, 0);
        l.commit(&apply).expect("apply commits");
        assert_eq!(l.serving().map(|a| a.version), Some(1));
        assert_eq!(l.active(), None);
        let accept = l.plan_accept().expect("soaking");
        l.commit(&accept).expect("accept commits");
        assert_eq!(l.active().map(|a| a.version), Some(1));
        assert_eq!(l.soaking(), None);
    }

    #[test]
    fn rollback_restores_the_previous_active() {
        let mut l = Lifecycle::new();
        staged(&mut l, ArtifactKind::LatencyModel);
        l.commit(&l.plan_apply().expect("apply v1"))
            .expect("commit");
        l.commit(&l.plan_accept().expect("accept v1"))
            .expect("commit");
        staged(&mut l, ArtifactKind::LatencyModel);
        let apply = l.plan_apply().expect("apply v2");
        assert_eq!(apply.previous, 1);
        l.commit(&apply).expect("commit");
        let rb = l.plan_rollback("p99 regression", true).expect("rollback");
        assert_eq!(rb.previous, 1);
        l.commit(&rb).expect("commit");
        assert_eq!(l.serving().map(|a| a.version), Some(1));
        assert_eq!(l.active().map(|a| a.version), Some(1));
        let note = l.last_rollback().expect("noted");
        assert!(note.auto);
        assert_eq!(note.version, 2);
    }

    #[test]
    fn accept_requires_a_soak() {
        let mut l = Lifecycle::new();
        assert_eq!(l.plan_accept(), Err(LifecycleError::NothingSoaking));
        staged(&mut l, ArtifactKind::ServingLimits);
        assert_eq!(l.plan_accept(), Err(LifecycleError::NothingSoaking));
    }

    #[test]
    fn apply_requires_a_staged_artifact_and_no_soak() {
        let mut l = Lifecycle::new();
        assert_eq!(l.plan_apply().err(), Some(LifecycleError::NothingStaged));
        staged(&mut l, ArtifactKind::LatencyModel);
        l.commit(&l.plan_apply().expect("apply")).expect("commit");
        staged(&mut l, ArtifactKind::LatencyModel);
        assert_eq!(
            l.plan_apply().err(),
            Some(LifecycleError::SoakInProgress { soaking: 1 })
        );
    }

    #[test]
    fn restaging_replaces_the_staged_slot() {
        let mut l = Lifecycle::new();
        staged(&mut l, ArtifactKind::LatencyModel);
        let v2 = staged(&mut l, ArtifactKind::ClusterPreset);
        assert_eq!(l.staged().map(|a| a.version), Some(v2));
        let entries = l.entries();
        assert_eq!(entries[0].2, "retired");
        assert_eq!(entries[1].2, "staged");
    }

    #[test]
    fn replay_rejects_forged_records() {
        let mut l = Lifecycle::new();
        let forged = JournalRecord::new(op::ACCEPT, 7);
        assert_eq!(l.commit(&forged), Err(LifecycleError::NothingSoaking));
        let unknown = JournalRecord::new("teleport", 1);
        assert!(matches!(
            l.commit(&unknown),
            Err(LifecycleError::BadRecord { .. })
        ));
    }

    #[test]
    fn journal_record_round_trips() {
        let mut l = Lifecycle::new();
        staged(&mut l, ArtifactKind::LatencyModel);
        let record = l.plan_apply().expect("apply");
        let json = serde_json::to_string(&record).expect("encodes");
        let back: JournalRecord = serde_json::from_str(&json).expect("decodes");
        assert_eq!(back, record);
    }
}
