//! The crash-safe artifact store: versioned payload files plus an
//! append-only lifecycle journal under one state directory.
//!
//! Durability protocol:
//!
//! * **Payloads** are written to `artifacts/.vN.tmp`, fsynced, then
//!   atomically renamed to `artifacts/vN.json` *before* the `stage`
//!   record is journalled. A crash between the rename and the journal
//!   append leaves an orphan payload file that replay simply ignores
//!   (the version was never staged, so the next stage reuses it and the
//!   rename overwrites the orphan).
//! * **The journal** (`journal.jsonl`) is append-only: one JSON record
//!   per line, flushed and fsynced per append. Replay tolerates exactly
//!   one torn trailing line (a crash mid-append), truncates the torn
//!   fragment so the next append starts a fresh line, and rejects
//!   anything else as corruption.
//! * Every write point calls [`cbes_faults::fail_point`] so the crash
//!   suite can hard-kill the process at each step and assert recovery.
//!
//! The in-memory [`Lifecycle`] is only mutated *after* the record is on
//! disk, so the durable state always leads the visible state — a crash
//! can lose an acknowledgement, never an acknowledged transition.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use cbes_faults::fail_point;
use parking_lot::Mutex;

use crate::lifecycle::{
    op, ArtifactKind, ArtifactRef, JournalRecord, Lifecycle, LifecycleError, RollbackNote, Soak,
};
use crate::report::{ArtifactEntry, ArtifactSummary, LifecycleStatus, RollbackReport, SoakSummary};

/// Every fail-point name the store's write paths pass through, in the
/// order a full stage→apply→accept cycle reaches them. The crash suite
/// iterates this table so a new write point cannot be added without
/// being covered.
pub const WRITE_POINTS: [&str; 10] = [
    "reconfig.stage.payload_tmp",
    "reconfig.stage.payload_renamed",
    "reconfig.journal.stage.pre",
    "reconfig.journal.stage.post",
    "reconfig.journal.apply.pre",
    "reconfig.journal.apply.post",
    "reconfig.journal.accept.pre",
    "reconfig.journal.accept.post",
    "reconfig.journal.rollback.pre",
    "reconfig.journal.rollback.post",
];

/// A store-level failure.
#[derive(Debug)]
pub enum ReconfigError {
    /// A lifecycle transition was rejected.
    Lifecycle(LifecycleError),
    /// Filesystem I/O failed.
    Io {
        /// The path being read or written.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The journal holds a record that cannot be parsed or replayed.
    CorruptJournal {
        /// 1-based journal line number.
        line: usize,
        /// What went wrong.
        detail: String,
    },
    /// A payload failed kind-specific validation.
    InvalidPayload(String),
    /// An operation referenced a version the store has never staged.
    UnknownVersion(u64),
}

impl std::fmt::Display for ReconfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReconfigError::Lifecycle(e) => write!(f, "{e}"),
            ReconfigError::Io { path, source } => {
                write!(f, "i/o error on {}: {source}", path.display())
            }
            ReconfigError::CorruptJournal { line, detail } => {
                write!(f, "corrupt journal at line {line}: {detail}")
            }
            ReconfigError::InvalidPayload(detail) => write!(f, "invalid payload: {detail}"),
            ReconfigError::UnknownVersion(v) => write!(f, "unknown artifact version {v}"),
        }
    }
}

impl std::error::Error for ReconfigError {}

impl From<LifecycleError> for ReconfigError {
    fn from(e: LifecycleError) -> Self {
        ReconfigError::Lifecycle(e)
    }
}

/// Serving/admission limits carried by a `serving_limits` artifact.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServingLimits {
    /// Evaluation-request admission cap, requests/second (`0` = none).
    pub max_rps: f64,
    /// Back-off hint attached to shed replies, milliseconds.
    pub shed_retry_after_ms: u64,
}

/// Parse and validate an artifact payload for its kind.
///
/// `expected_nodes`, when known (the serving daemon knows its cluster
/// size), pins latency models and cluster presets to the running node
/// count — an artifact for the wrong cluster is rejected at stage time,
/// not at first query.
pub fn validate_payload(
    kind: ArtifactKind,
    payload: &str,
    expected_nodes: Option<usize>,
) -> Result<(), ReconfigError> {
    match kind {
        ArtifactKind::LatencyModel => {
            let model: cbes_netmodel::LatencyModel = serde_json::from_str(payload)
                .map_err(|e| ReconfigError::InvalidPayload(format!("latency model: {e}")))?;
            model.validate().map_err(ReconfigError::InvalidPayload)?;
            if let Some(n) = expected_nodes {
                if model.num_nodes() != n {
                    return Err(ReconfigError::InvalidPayload(format!(
                        "latency model covers {} nodes but the cluster has {n}",
                        model.num_nodes()
                    )));
                }
            }
        }
        ArtifactKind::ClusterPreset => {
            let spec: cbes_cluster::ClusterSpec = serde_json::from_str(payload)
                .map_err(|e| ReconfigError::InvalidPayload(format!("cluster preset: {e}")))?;
            let cluster = spec
                .build()
                .map_err(|e| ReconfigError::InvalidPayload(format!("cluster preset: {e}")))?;
            if let Some(n) = expected_nodes {
                if cluster.len() != n {
                    return Err(ReconfigError::InvalidPayload(format!(
                        "cluster preset defines {} nodes but the cluster has {n}",
                        cluster.len()
                    )));
                }
            }
        }
        ArtifactKind::ServingLimits => {
            let limits: ServingLimits = serde_json::from_str(payload)
                .map_err(|e| ReconfigError::InvalidPayload(format!("serving limits: {e}")))?;
            if !limits.max_rps.is_finite() || limits.max_rps < 0.0 {
                return Err(ReconfigError::InvalidPayload(format!(
                    "serving limits: max_rps {} is not a finite non-negative rate",
                    limits.max_rps
                )));
            }
        }
    }
    Ok(())
}

/// Outcome of [`ArtifactStore::apply`]: what to activate.
#[derive(Debug, Clone)]
pub struct Applied {
    /// The artifact now soaking.
    pub artifact: ArtifactRef,
    /// The previously active version (`0` = boot config).
    pub previous: u64,
    /// The artifact's payload JSON.
    pub payload: String,
}

/// Outcome of [`ArtifactStore::rollback`]: what to reinstate.
#[derive(Debug, Clone)]
pub struct RolledBack {
    /// The artifact rolled back.
    pub artifact: ArtifactRef,
    /// The version to reinstate (`0` = boot config).
    pub previous: u64,
    /// Payload of `previous` (`None` when reverting to boot config).
    pub previous_payload: Option<(ArtifactKind, String)>,
}

/// The crash-safe artifact store. All methods are `&self`; the journal
/// file and lifecycle state are internally synchronised, and concurrent
/// writers serialise on the journal lock.
pub struct ArtifactStore {
    dir: PathBuf,
    inner: Mutex<Inner>,
}

struct Inner {
    journal: File,
    state: Lifecycle,
}

impl std::fmt::Debug for ArtifactStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactStore")
            .field("dir", &self.dir)
            .finish_non_exhaustive()
    }
}

fn io_err(path: &Path) -> impl FnOnce(std::io::Error) -> ReconfigError + '_ {
    move |source| ReconfigError::Io {
        path: path.to_path_buf(),
        source,
    }
}

impl ArtifactStore {
    /// Open (or initialise) the store under `dir`, replaying the
    /// journal to recover the exact pre-crash lifecycle state.
    pub fn open(dir: impl Into<PathBuf>) -> Result<ArtifactStore, ReconfigError> {
        let dir = dir.into();
        let artifacts = dir.join("artifacts");
        fs::create_dir_all(&artifacts).map_err(io_err(&artifacts))?;
        let journal_path = dir.join("journal.jsonl");
        let mut state = Lifecycle::new();
        if journal_path.exists() {
            let text = fs::read_to_string(&journal_path).map_err(io_err(&journal_path))?;
            let valid_len = Self::replay(&text, &mut state)?;
            // A torn trailing fragment (crash mid-append) was tolerated
            // by replay. Truncate it away before reopening for append:
            // otherwise the next record would be written onto the same
            // line as the fragment, turning a tolerated torn *tail*
            // into a fatal corrupt *interior* line on the open after
            // that. Truncation is idempotent — a crash mid-truncate
            // leaves a (shorter) fragment that the next open tolerates
            // and truncates again.
            if valid_len < text.len() {
                let f = OpenOptions::new()
                    .write(true)
                    .open(&journal_path)
                    .map_err(io_err(&journal_path))?;
                f.set_len(valid_len as u64).map_err(io_err(&journal_path))?;
                f.sync_all().map_err(io_err(&journal_path))?;
            }
        }
        let journal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&journal_path)
            .map_err(io_err(&journal_path))?;
        Ok(ArtifactStore {
            dir,
            inner: Mutex::new(Inner { journal, state }),
        })
    }

    /// Replay journal text into `state`, tolerating exactly one torn
    /// trailing line, and return the byte length of the valid committed
    /// prefix (everything past it is the torn fragment).
    ///
    /// A record only counts as committed when its terminating newline
    /// reached disk: the writer emits `record + '\n'` in one append, so
    /// an unterminated final line — even one that happens to parse —
    /// is a write the caller was never acknowledged for, and replay
    /// drops it rather than adopting a transition nobody observed.
    fn replay(text: &str, state: &mut Lifecycle) -> Result<usize, ReconfigError> {
        let mut offset = 0usize;
        let mut line_no = 0usize;
        while offset < text.len() {
            line_no += 1;
            let rest = &text[offset..];
            let (line, consumed) = match rest.find('\n') {
                Some(n) => (&rest[..n], n + 1),
                // Unterminated final line: the one tolerated torn tail.
                None => return Ok(offset),
            };
            if !line.trim().is_empty() {
                let record: JournalRecord = match serde_json::from_str(line) {
                    Ok(r) => r,
                    // A garbled *final* line is also a torn append (the
                    // newline flushed but the record bytes did not).
                    // Anywhere else it is corruption.
                    Err(_) if offset + consumed >= text.len() => {
                        return Ok(offset);
                    }
                    Err(e) => {
                        return Err(ReconfigError::CorruptJournal {
                            line: line_no,
                            detail: e.to_string(),
                        });
                    }
                };
                state
                    .commit(&record)
                    .map_err(|e| ReconfigError::CorruptJournal {
                        line: line_no,
                        detail: e.to_string(),
                    })?;
            }
            offset += consumed;
        }
        Ok(offset)
    }

    /// The state directory this store persists under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn payload_path(&self, version: u64) -> PathBuf {
        self.dir.join("artifacts").join(format!("v{version}.json"))
    }

    /// Append one record to the journal: write, flush, fsync. The
    /// in-memory state is only advanced by the caller afterwards.
    fn append(journal: &mut File, dir: &Path, record: &JournalRecord) -> Result<(), ReconfigError> {
        let path = dir.join("journal.jsonl");
        let mut line = serde_json::to_string(record).expect("journal records always serialise");
        line.push('\n');
        fail_point(&format!("reconfig.journal.{}.pre", record.op));
        journal.write_all(line.as_bytes()).map_err(io_err(&path))?;
        journal.flush().map_err(io_err(&path))?;
        // cbes-analyze: allow(blocking_hot_path, journal durability contract: the fsync runs on the worker executing the artifact verb, never on the reactor)
        journal.sync_data().map_err(io_err(&path))?;
        fail_point(&format!("reconfig.journal.{}.post", record.op));
        Ok(())
    }

    /// Stage a new artifact version: validate the payload, persist it
    /// durably, journal the `stage` record, and return the version.
    pub fn stage(
        &self,
        kind: ArtifactKind,
        payload: &str,
        expected_nodes: Option<usize>,
    ) -> Result<u64, ReconfigError> {
        validate_payload(kind, payload, expected_nodes)?;
        let mut inner = self.inner.lock();
        let record = inner.state.plan_stage(kind);
        let version = record.version;
        // Payload first: write-temp + fsync + atomic rename, so the
        // journal never references a payload that is not fully on disk.
        let tmp = self.dir.join("artifacts").join(format!(".v{version}.tmp"));
        let target = self.payload_path(version);
        {
            let mut f = File::create(&tmp).map_err(io_err(&tmp))?;
            f.write_all(payload.as_bytes()).map_err(io_err(&tmp))?;
            // cbes-analyze: allow(blocking_hot_path, payload durability contract: stage runs on the worker that received the verb, and the payload must be on disk before the journal references it)
            f.sync_all().map_err(io_err(&tmp))?;
        }
        fail_point("reconfig.stage.payload_tmp");
        fs::rename(&tmp, &target).map_err(io_err(&target))?;
        fail_point("reconfig.stage.payload_renamed");
        Self::append(&mut inner.journal, &self.dir, &record)?;
        inner.state.commit(&record)?;
        Ok(version)
    }

    /// Activate the staged artifact, entering its soak window. Returns
    /// the payload so the caller can swap it into the serving path.
    pub fn apply(&self) -> Result<Applied, ReconfigError> {
        let mut inner = self.inner.lock();
        let record = inner.state.plan_apply()?;
        let artifact = inner
            .state
            .staged()
            .ok_or(ReconfigError::Lifecycle(LifecycleError::NothingStaged))?;
        let payload = self.read_payload(record.version)?;
        Self::append(&mut inner.journal, &self.dir, &record)?;
        inner.state.commit(&record)?;
        Ok(Applied {
            artifact,
            previous: record.previous,
            payload,
        })
    }

    /// Accept the soaking artifact as the durable active configuration.
    pub fn accept(&self) -> Result<ArtifactRef, ReconfigError> {
        let mut inner = self.inner.lock();
        let record = inner.state.plan_accept()?;
        let artifact = inner
            .state
            .soaking()
            .map(|s| s.artifact)
            .ok_or(ReconfigError::Lifecycle(LifecycleError::NothingSoaking))?;
        Self::append(&mut inner.journal, &self.dir, &record)?;
        inner.state.commit(&record)?;
        Ok(artifact)
    }

    /// Roll the soaking artifact back. Returns what to reinstate:
    /// the previous version's payload, or `None` for the boot config.
    pub fn rollback(&self, reason: &str, auto: bool) -> Result<RolledBack, ReconfigError> {
        let mut inner = self.inner.lock();
        let record = inner.state.plan_rollback(reason, auto)?;
        let soak = inner
            .state
            .soaking()
            .ok_or(ReconfigError::Lifecycle(LifecycleError::NothingSoaking))?;
        let previous_payload = if record.previous == 0 {
            None
        } else {
            let kind = inner
                .state
                .kind_of(record.previous)
                .ok_or(ReconfigError::UnknownVersion(record.previous))?;
            Some((kind, self.read_payload(record.previous)?))
        };
        Self::append(&mut inner.journal, &self.dir, &record)?;
        inner.state.commit(&record)?;
        Ok(RolledBack {
            artifact: soak.artifact,
            previous: record.previous,
            previous_payload,
        })
    }

    /// Read the payload of a staged version.
    pub fn payload(&self, version: u64) -> Result<String, ReconfigError> {
        {
            let inner = self.inner.lock();
            if inner.state.kind_of(version).is_none() {
                return Err(ReconfigError::UnknownVersion(version));
            }
        }
        self.read_payload(version)
    }

    fn read_payload(&self, version: u64) -> Result<String, ReconfigError> {
        let path = self.payload_path(version);
        fs::read_to_string(&path).map_err(io_err(&path))
    }

    /// The artifact currently soaking, if any.
    pub fn soaking(&self) -> Option<Soak> {
        self.inner.lock().state.soaking()
    }

    /// The durably accepted artifact, if any.
    pub fn active(&self) -> Option<ArtifactRef> {
        self.inner.lock().state.active()
    }

    /// The artifact a request is served under right now.
    pub fn serving(&self) -> Option<ArtifactRef> {
        self.inner.lock().state.serving()
    }

    /// A serialisable snapshot of the lifecycle, for status replies.
    pub fn status(&self) -> LifecycleStatus {
        let inner = self.inner.lock();
        let state = &inner.state;
        let summary = |a: ArtifactRef| ArtifactSummary {
            version: a.version,
            kind: a.kind.as_str().to_string(),
        };
        LifecycleStatus {
            staged: state.staged().map(summary),
            soaking: state.soaking().map(|s: Soak| SoakSummary {
                version: s.artifact.version,
                kind: s.artifact.kind.as_str().to_string(),
                previous: s.previous,
            }),
            active: state.active().map(summary),
            last_rollback: state
                .last_rollback()
                .map(|n: &RollbackNote| RollbackReport {
                    version: n.version,
                    reason: n.reason.clone(),
                    auto: n.auto,
                }),
            journal_records: state.records(),
            artifacts: state
                .entries()
                .into_iter()
                .map(|(version, kind, lifecycle_state)| ArtifactEntry {
                    version,
                    kind: kind.as_str().to_string(),
                    state: lifecycle_state.to_string(),
                })
                .collect(),
        }
    }
}

// Keep the journal-op constants referenced so the module-level docs and
// fail-point names cannot silently drift from the lifecycle vocabulary.
const _: [&str; 4] = [op::STAGE, op::APPLY, op::ACCEPT, op::ROLLBACK];

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cbes-reconfig-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn model_json(n: usize) -> String {
        let model = cbes_netmodel::LatencyModel::from_table(
            n,
            vec![64, 4096],
            vec![1e-4; cbes_netmodel::LatencyModel::pairs(n) * 2],
        );
        serde_json::to_string(&model).expect("model encodes")
    }

    #[test]
    fn stage_apply_accept_survives_reopen() {
        let dir = scratch("cycle");
        {
            let store = ArtifactStore::open(&dir).expect("open");
            let v = store
                .stage(ArtifactKind::LatencyModel, &model_json(4), Some(4))
                .expect("stage");
            assert_eq!(v, 1);
            let applied = store.apply().expect("apply");
            assert_eq!(applied.artifact.version, 1);
            assert_eq!(applied.previous, 0);
            store.accept().expect("accept");
        }
        let store = ArtifactStore::open(&dir).expect("reopen");
        assert_eq!(store.active().map(|a| a.version), Some(1));
        assert_eq!(store.soaking(), None);
        let status = store.status();
        assert_eq!(status.journal_records, 3);
        assert_eq!(status.artifacts.len(), 1);
        assert_eq!(status.artifacts[0].state, "active");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rollback_returns_the_previous_payload() {
        let dir = scratch("rollback");
        let store = ArtifactStore::open(&dir).expect("open");
        let first = model_json(3);
        store
            .stage(ArtifactKind::LatencyModel, &first, Some(3))
            .expect("stage v1");
        store.apply().expect("apply v1");
        store.accept().expect("accept v1");
        store
            .stage(ArtifactKind::LatencyModel, &model_json(3), Some(3))
            .expect("stage v2");
        store.apply().expect("apply v2");
        let rb = store.rollback("operator says no", false).expect("rollback");
        assert_eq!(rb.artifact.version, 2);
        assert_eq!(rb.previous, 1);
        let (kind, payload) = rb.previous_payload.expect("previous payload");
        assert_eq!(kind, ArtifactKind::LatencyModel);
        assert_eq!(payload, first);
        assert_eq!(store.serving().map(|a| a.version), Some(1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_trailing_journal_line_is_dropped() {
        let dir = scratch("torn");
        {
            let store = ArtifactStore::open(&dir).expect("open");
            store
                .stage(
                    ArtifactKind::ServingLimits,
                    "{\"max_rps\": 5.0, \"shed_retry_after_ms\": 10}",
                    None,
                )
                .expect("stage");
        }
        // Simulate a crash mid-append: garbage tail without newline.
        let journal = dir.join("journal.jsonl");
        let mut f = OpenOptions::new()
            .append(true)
            .open(&journal)
            .expect("open journal");
        f.write_all(b"{\"op\":\"app").expect("torn write");
        drop(f);
        let store = ArtifactStore::open(&dir).expect("reopen despite torn tail");
        assert_eq!(store.status().journal_records, 1);
        assert_eq!(store.soaking(), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_recovery_truncates_so_later_appends_survive() {
        let dir = scratch("torn-append");
        {
            let store = ArtifactStore::open(&dir).expect("open");
            store
                .stage(
                    ArtifactKind::ServingLimits,
                    "{\"max_rps\": 5.0, \"shed_retry_after_ms\": 10}",
                    None,
                )
                .expect("stage");
        }
        let journal = dir.join("journal.jsonl");
        let mut f = OpenOptions::new()
            .append(true)
            .open(&journal)
            .expect("open journal");
        f.write_all(b"{\"op\":\"app").expect("torn write");
        drop(f);
        // Recover from the torn tail, then keep writing: the appended
        // record must land on a fresh line, not on the fragment.
        {
            let store = ArtifactStore::open(&dir).expect("reopen despite torn tail");
            store.apply().expect("apply after recovery");
        }
        let text = fs::read_to_string(&journal).expect("read journal");
        assert!(
            !text.contains("{\"op\":\"app{"),
            "torn fragment survived into an interior line: {text:?}"
        );
        let store = ArtifactStore::open(&dir).expect("reopen after post-recovery append");
        assert_eq!(store.status().journal_records, 2);
        assert_eq!(store.soaking().map(|s| s.artifact.version), Some(1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unterminated_final_record_is_treated_as_torn() {
        let dir = scratch("torn-no-newline");
        {
            let store = ArtifactStore::open(&dir).expect("open");
            store
                .stage(
                    ArtifactKind::ServingLimits,
                    "{\"max_rps\": 5.0, \"shed_retry_after_ms\": 10}",
                    None,
                )
                .expect("stage");
        }
        // A complete, parseable record whose newline never reached disk
        // was never acknowledged: replay must drop it, not adopt it.
        let journal = dir.join("journal.jsonl");
        let mut f = OpenOptions::new()
            .append(true)
            .open(&journal)
            .expect("open journal");
        f.write_all(
            b"{\"op\":\"apply\",\"version\":1,\"kind\":\"\",\"previous\":0,\"reason\":\"\",\"auto\":false}",
        )
        .expect("unterminated write");
        drop(f);
        {
            let store = ArtifactStore::open(&dir).expect("reopen");
            assert_eq!(store.status().journal_records, 1);
            assert_eq!(store.soaking(), None, "unacknowledged apply adopted");
            // And the store stays writable across another reopen.
            store.apply().expect("apply after recovery");
        }
        let store = ArtifactStore::open(&dir).expect("reopen after append");
        assert_eq!(store.status().journal_records, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_interior_line_is_corruption() {
        let dir = scratch("corrupt");
        {
            let store = ArtifactStore::open(&dir).expect("open");
            store
                .stage(
                    ArtifactKind::ServingLimits,
                    "{\"max_rps\": 5.0, \"shed_retry_after_ms\": 10}",
                    None,
                )
                .expect("stage");
        }
        let journal = dir.join("journal.jsonl");
        let text = fs::read_to_string(&journal).expect("read");
        fs::write(&journal, format!("not json\n{text}")).expect("rewrite");
        assert!(matches!(
            ArtifactStore::open(&dir),
            Err(ReconfigError::CorruptJournal { line: 1, .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn payload_validation_gates_staging() {
        let dir = scratch("validate");
        let store = ArtifactStore::open(&dir).expect("open");
        // Wrong node count for the running cluster.
        assert!(matches!(
            store.stage(ArtifactKind::LatencyModel, &model_json(4), Some(8)),
            Err(ReconfigError::InvalidPayload(_))
        ));
        // Structurally broken model.
        assert!(matches!(
            store.stage(
                ArtifactKind::LatencyModel,
                "{\"n\": 3, \"sizes\": [64], \"table\": [0.1]}",
                None
            ),
            Err(ReconfigError::InvalidPayload(_))
        ));
        assert!(matches!(
            store.stage(
                ArtifactKind::ServingLimits,
                "{\"max_rps\": -1.0, \"shed_retry_after_ms\": 0}",
                None
            ),
            Err(ReconfigError::InvalidPayload(_))
        ));
        // Nothing journalled by rejected stages.
        assert_eq!(store.status().journal_records, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_points_cover_every_journal_op() {
        for op_name in [op::STAGE, op::APPLY, op::ACCEPT, op::ROLLBACK] {
            for suffix in ["pre", "post"] {
                let point = format!("reconfig.journal.{op_name}.{suffix}");
                assert!(
                    WRITE_POINTS.contains(&point.as_str()),
                    "missing write point {point}"
                );
            }
        }
    }
}
