//! The CBES core: mapping evaluation and the surrounding service machinery.
//!
//! This crate implements the paper's primary contribution (§2–3):
//!
//! * [`mapping::Mapping`] — an assignment of application processes to
//!   cluster nodes (paper eq. 1–3).
//! * [`eval::Evaluator`] — the mapping evaluation operation: predict the
//!   execution time `S_M = max_i (R_i + C_i)` of an application under a
//!   candidate mapping (paper eq. 4–8), combining the application profile
//!   with a snapshot of current system conditions.
//! * [`snapshot::SystemSnapshot`] — the on-demand view of system state the
//!   evaluation consumes: the calibrated no-load latency model, the load
//!   adjuster, and the monitor's current per-node load estimates. This is
//!   the `O(N)` approximation of the full `O(N²)` resource picture.
//! * [`monitor::Monitor`] — the monitoring daemon stand-in: per-node
//!   forecasters fed by periodic load measurements.
//! * [`registry::ProfileRegistry`] — the application-profile database.
//! * [`service::CbesService`] — the façade accepting mapping-comparison
//!   requests from external clients (such as the schedulers in
//!   `cbes-sched`).
//! * [`remap::RemapAnalysis`] — cost/benefit analysis for re-mapping a
//!   running application when conditions change (the paper's motivating
//!   "remapping events", §2, implemented as an extension).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod eval;
pub mod health;
pub mod mapping;
pub mod monitor;
pub mod registry;
pub mod remap;
pub mod service;
pub mod snapshot;

pub use error::ServiceError;
pub use eval::{Evaluator, Prediction};
pub use health::{HealthPolicy, HealthTracker, HealthView, NodeHealth};
pub use mapping::Mapping;
pub use monitor::{ForecastKind, Monitor};
pub use registry::ProfileRegistry;
pub use remap::{MigrationCost, RemapAnalysis, RemapDecision};
pub use service::CbesService;
pub use snapshot::SystemSnapshot;
