//! The mapping evaluation operation — paper §3, equations 4–8.

use crate::mapping::Mapping;
use crate::snapshot::SystemSnapshot;
use cbes_trace::analyze::theta;
use cbes_trace::{AppProfile, ProcessProfile};
use serde::{Deserialize, Serialize};

/// Cost breakdown for one process under an evaluated mapping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcCost {
    /// Computation contribution `R_i` (eq. 5).
    pub r: f64,
    /// Communication contribution `C_i = λ_i · Θ_i^M` (eq. 8).
    pub c: f64,
}

impl ProcCost {
    /// `R_i + C_i`.
    pub fn total(&self) -> f64 {
        self.r + self.c
    }
}

/// A full execution-time prediction for one mapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Predicted execution time `S_M` (eq. 4).
    pub time: f64,
    /// The rank `i_M` whose `R_i + C_i` attains the maximum.
    pub bottleneck: usize,
    /// Per-process cost breakdown, indexed by rank.
    pub per_proc: Vec<ProcCost>,
}

/// Evaluates candidate mappings for one application against one system
/// snapshot: the paper's core mapping-evaluation operation.
pub struct Evaluator<'a> {
    profile: &'a AppProfile,
    snap: &'a SystemSnapshot<'a>,
}

impl<'a> Evaluator<'a> {
    /// An evaluator for `profile` under the conditions in `snap`.
    pub fn new(profile: &'a AppProfile, snap: &'a SystemSnapshot<'a>) -> Self {
        Evaluator { profile, snap }
    }

    /// The application profile being evaluated.
    pub fn profile(&self) -> &AppProfile {
        self.profile
    }

    /// Paper eq. 5: `R_i = (X_i + O_i) · (Speed_profile / Speed_j) / ACPU_j`,
    /// extended with a CPU-sharing factor when the mapping co-locates more
    /// ranks on a node than it has CPUs (the profiling side of eq. 5 assumes
    /// a dedicated CPU; oversubscription divides the effective speed), and
    /// with health degradation: `Down` nodes cost `+∞` (unmappable) and
    /// `Suspect` nodes see their `ACPU` divided by the suspect penalty.
    fn r_i(&self, p: &ProcessProfile, m: &Mapping, share: &[f64]) -> f64 {
        let node = m.node(p.rank);
        let acpu = self.snap.effective_acpu(node);
        if acpu <= 0.0 {
            return f64::INFINITY;
        }
        // cbes-analyze: allow(panic_path, share comes from cpu_shares over the same mapping so it has one entry per rank)
        (p.x + p.o) * (p.profile_speed / (self.snap.speed(node) * share[p.rank])) / acpu
    }

    /// Per-rank CPU share under `m`: `min(1, cpus / ranks_on_node)`.
    fn cpu_shares(&self, m: &Mapping) -> Vec<f64> {
        let mut per_node = std::collections::HashMap::new();
        for (_, node) in m.iter() {
            *per_node.entry(node).or_insert(0u32) += 1;
        }
        m.iter()
            .map(|(_, node)| {
                let ranks = per_node.get(&node).copied().unwrap_or(1) as f64;
                (self.snap.cluster.node(node).cpus as f64 / ranks).min(1.0)
            })
            .collect()
    }

    /// Paper eq. 6+8: `C_i = λ_i · Θ_i^M` with `Θ` summed over message
    /// groups at current load-adjusted latencies.
    fn c_i(&self, p: &ProcessProfile, m: &Mapping) -> f64 {
        if p.lambda == 0.0 || (p.sends.is_empty() && p.recvs.is_empty()) {
            return 0.0;
        }
        p.lambda * theta(p.rank, &p.sends, &p.recvs, m.as_slice(), self.snap)
    }

    /// Predict the execution time of `mapping` (eq. 4), with the full
    /// per-process breakdown.
    ///
    /// # Panics
    /// Panics if the mapping arity differs from the profile's process count
    /// (callers validate at the service boundary).
    pub fn predict(&self, mapping: &Mapping) -> Prediction {
        assert_eq!(
            mapping.len(),
            self.profile.num_procs(),
            "mapping arity must match profile"
        );
        let shares = self.cpu_shares(mapping);
        let mut per_proc = Vec::with_capacity(self.profile.num_procs());
        let mut best = (0usize, f64::NEG_INFINITY);
        for p in &self.profile.procs {
            let cost = ProcCost {
                r: self.r_i(p, mapping, &shares),
                c: self.c_i(p, mapping),
            };
            if cost.total() > best.1 {
                best = (p.rank, cost.total());
            }
            per_proc.push(cost);
        }
        Prediction {
            time: best.1.max(0.0),
            bottleneck: best.0,
            per_proc,
        }
    }

    /// Fast path: only the predicted time (the SA scheduler's energy
    /// function, called thousands of times per scheduling run).
    pub fn predict_time(&self, mapping: &Mapping) -> f64 {
        debug_assert_eq!(mapping.len(), self.profile.num_procs());
        let shares = self.cpu_shares(mapping);
        let mut max = 0.0f64;
        for p in &self.profile.procs {
            let t = self.r_i(p, mapping, &shares) + self.c_i(p, mapping);
            if t > max {
                max = t;
            }
        }
        max
    }

    /// The NCS variant: eq. 4 with the communication term dropped. Scores
    /// mappings by computation alone; **not** a time prediction (paper §6).
    pub fn compute_only_score(&self, mapping: &Mapping) -> f64 {
        debug_assert_eq!(mapping.len(), self.profile.num_procs());
        let shares = self.cpu_shares(mapping);
        let mut max = 0.0f64;
        for p in &self.profile.procs {
            let t = self.r_i(p, mapping, &shares);
            if t > max {
                max = t;
            }
        }
        max
    }
}

/// Batch evaluation of many candidate mappings for one application
/// against one snapshot, in a cache-friendly struct-of-arrays layout.
///
/// [`Evaluator`] re-derives everything per candidate: a fresh CPU-share
/// `HashMap`, and per-proc snapshot lookups that chase the cluster,
/// load, and health structures on every call. A batch request holds the
/// profile and snapshot fixed across the whole candidate set, so this
/// evaluator flattens the invariants once — per-rank `X_i + O_i`,
/// per-node speed / effective-ACPU / CPU-count arrays — and reuses one
/// census buffer for the share computation, leaving only the genuinely
/// per-candidate work (placement-dependent `Θ` lookups) in the loop.
///
/// Predictions are **identical** to calling [`Evaluator::predict`] per
/// mapping on the same snapshot: the flattened values are the same
/// numbers read through fewer indirections, and the floating-point
/// expression order is unchanged. The `Batch` wire action relies on
/// this equivalence.
pub struct BatchEvaluator<'a> {
    profile: &'a AppProfile,
    snap: &'a SystemSnapshot<'a>,
    /// Per-rank `X_i + O_i` (the eq. 5 numerator), rank-indexed.
    xo: Vec<f64>,
    /// Per-node current speed, node-indexed.
    speed: Vec<f64>,
    /// Per-node effective ACPU (health degradation applied), node-indexed.
    acpu: Vec<f64>,
    /// Per-node CPU count, node-indexed.
    cpus: Vec<f64>,
}

impl<'a> BatchEvaluator<'a> {
    /// Flatten `profile` and `snap` into the struct-of-arrays layout.
    /// Cost is one pass over ranks plus one pass over nodes; it is
    /// repaid after the first candidate.
    pub fn new(profile: &'a AppProfile, snap: &'a SystemSnapshot<'a>) -> Self {
        let xo = profile.procs.iter().map(|p| p.x + p.o).collect();
        let n = snap.cluster.len();
        let mut speed = Vec::with_capacity(n);
        let mut acpu = Vec::with_capacity(n);
        let mut cpus = Vec::with_capacity(n);
        for i in 0..n {
            let node = cbes_cluster::NodeId(i as u32);
            speed.push(snap.speed(node));
            acpu.push(snap.effective_acpu(node));
            cpus.push(snap.cluster.node(node).cpus as f64);
        }
        BatchEvaluator {
            profile,
            snap,
            xo,
            speed,
            acpu,
            cpus,
        }
    }

    /// Predict every candidate in request order. Equivalent to
    /// [`Evaluator::predict`] per mapping — same snapshot, same numbers.
    ///
    /// # Panics
    /// Panics if any mapping's arity differs from the profile's process
    /// count (callers validate at the service boundary).
    pub fn predict_batch(&self, mappings: &[Mapping]) -> Vec<Prediction> {
        let mut census = vec![0u32; self.cpus.len()];
        let mut shares = Vec::with_capacity(self.profile.num_procs());
        mappings
            .iter()
            .map(|m| self.predict_one(m, &mut census, &mut shares))
            .collect()
    }

    fn predict_one(
        &self,
        mapping: &Mapping,
        census: &mut [u32],
        shares: &mut Vec<f64>,
    ) -> Prediction {
        assert_eq!(
            mapping.len(),
            self.profile.num_procs(),
            "mapping arity must match profile"
        );
        // CPU-share census over the reused buffer: count ranks per
        // node, derive `min(1, cpus / ranks)` per rank, then zero only
        // the touched entries so the buffer is clean for the next
        // candidate without an O(nodes) wipe.
        for (_, node) in mapping.iter() {
            if let Some(slot) = census.get_mut(node.0 as usize) {
                *slot += 1;
            }
        }
        shares.clear();
        for (_, node) in mapping.iter() {
            let ranks = census.get(node.0 as usize).copied().unwrap_or(1).max(1) as f64;
            let cpus = self.cpus.get(node.0 as usize).copied().unwrap_or(1.0);
            shares.push((cpus / ranks).min(1.0));
        }
        for (_, node) in mapping.iter() {
            if let Some(slot) = census.get_mut(node.0 as usize) {
                *slot = 0;
            }
        }
        let mut per_proc = Vec::with_capacity(self.profile.num_procs());
        let mut best = (0usize, f64::NEG_INFINITY);
        for p in &self.profile.procs {
            let node = mapping.node(p.rank);
            let ni = node.0 as usize;
            let acpu = self.acpu.get(ni).copied().unwrap_or(0.0);
            let r = if acpu <= 0.0 {
                f64::INFINITY
            } else {
                let xo = self.xo.get(p.rank).copied().unwrap_or(p.x + p.o);
                let speed = self.speed.get(ni).copied().unwrap_or(1.0);
                let share = shares.get(p.rank).copied().unwrap_or(1.0);
                xo * (p.profile_speed / (speed * share)) / acpu
            };
            let c = if p.lambda == 0.0 || (p.sends.is_empty() && p.recvs.is_empty()) {
                0.0
            } else {
                p.lambda * theta(p.rank, &p.sends, &p.recvs, mapping.as_slice(), self.snap)
            };
            let cost = ProcCost { r, c };
            if cost.total() > best.1 {
                best = (p.rank, cost.total());
            }
            per_proc.push(cost);
        }
        Prediction {
            time: best.1.max(0.0),
            bottleneck: best.0,
            per_proc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbes_cluster::load::LoadState;
    use cbes_cluster::presets::two_switch_demo;
    use cbes_cluster::{Architecture, NodeId};
    use cbes_netmodel::LoadAdjuster;
    use cbes_trace::MessageGroup;
    use std::collections::BTreeMap;

    /// Two processes, 10 s compute each, exchanging 100×4 KiB in each
    /// direction, profiled on Alpha nodes (speed 1.0), λ = 1.
    fn profile() -> AppProfile {
        let mk = |rank: usize| ProcessProfile {
            rank,
            x: 9.5,
            o: 0.5,
            b: 0.2,
            sends: vec![MessageGroup {
                peer: 1 - rank,
                bytes: 4096,
                count: 100,
            }],
            recvs: vec![MessageGroup {
                peer: 1 - rank,
                bytes: 4096,
                count: 100,
            }],
            profile_speed: 1.0,
            lambda: 1.0,
        };
        AppProfile {
            name: "synthetic".into(),
            procs: vec![mk(0), mk(1)],
            arch_ratios: BTreeMap::new(),
        }
    }

    #[test]
    fn prediction_on_profiling_conditions_reproduces_profile_times() {
        let c = two_switch_demo();
        let snap = SystemSnapshot::no_load(&c, &c);
        let p = profile();
        let ev = Evaluator::new(&p, &snap);
        let m = Mapping::new(vec![NodeId(0), NodeId(1)]);
        let pred = ev.predict(&m);
        // R = 10 exactly; C = 200 messages × same-switch latency.
        let lat = c.no_load_latency(NodeId(0), NodeId(1), 4096);
        assert!((pred.per_proc[0].r - 10.0).abs() < 1e-9);
        assert!((pred.per_proc[0].c - 200.0 * lat).abs() < 1e-9);
        assert!((pred.time - (10.0 + 200.0 * lat)).abs() < 1e-9);
    }

    #[test]
    fn slower_node_increases_r() {
        let c = two_switch_demo();
        let snap = SystemSnapshot::no_load(&c, &c);
        let p = profile();
        let ev = Evaluator::new(&p, &snap);
        // Node 4 is Intel at 0.85.
        let m = Mapping::new(vec![NodeId(4), NodeId(1)]);
        let pred = ev.predict(&m);
        assert!((pred.per_proc[0].r - 10.0 / 0.85).abs() < 1e-9);
        assert_eq!(pred.bottleneck, 0);
    }

    #[test]
    fn cpu_load_divides_availability() {
        let c = two_switch_demo();
        let mut load = LoadState::idle(c.len());
        load.set_cpu_avail(NodeId(0), 0.5);
        let snap = SystemSnapshot::new(&c, &c, LoadAdjuster::default(), load);
        let p = profile();
        let ev = Evaluator::new(&p, &snap);
        let m = Mapping::new(vec![NodeId(0), NodeId(1)]);
        let pred = ev.predict(&m);
        assert!((pred.per_proc[0].r - 20.0).abs() < 1e-9);
    }

    #[test]
    fn cross_switch_mapping_predicts_longer_time() {
        let c = two_switch_demo();
        let snap = SystemSnapshot::no_load(&c, &c);
        let p = profile();
        let ev = Evaluator::new(&p, &snap);
        let near = ev.predict_time(&Mapping::new(vec![NodeId(0), NodeId(1)]));
        let far = ev.predict_time(&Mapping::new(vec![NodeId(0), NodeId(4)]));
        assert!(far > near);
    }

    #[test]
    fn lambda_scales_communication_only() {
        let c = two_switch_demo();
        let snap = SystemSnapshot::no_load(&c, &c);
        let mut p = profile();
        for pp in &mut p.procs {
            pp.lambda = 0.5;
        }
        let half = Evaluator::new(&p, &snap);
        let m = Mapping::new(vec![NodeId(0), NodeId(1)]);
        let pred_half = half.predict(&m);
        let p1 = profile();
        let full = Evaluator::new(&p1, &snap);
        let pred_full = full.predict(&m);
        assert!((pred_half.per_proc[0].c * 2.0 - pred_full.per_proc[0].c).abs() < 1e-12);
        assert_eq!(pred_half.per_proc[0].r, pred_full.per_proc[0].r);
    }

    #[test]
    fn compute_only_score_ignores_communication() {
        let c = two_switch_demo();
        let snap = SystemSnapshot::no_load(&c, &c);
        let p = profile();
        let ev = Evaluator::new(&p, &snap);
        let near = ev.compute_only_score(&Mapping::new(vec![NodeId(0), NodeId(1)]));
        let far = ev.compute_only_score(&Mapping::new(vec![NodeId(0), NodeId(4)]));
        // Node 1 and node 4 differ only in speed for the compute term; the
        // communication difference is invisible to NCS... but speeds differ
        // (1.0 vs 0.85), so compare two same-speed nodes instead:
        let same_arch = ev.compute_only_score(&Mapping::new(vec![NodeId(0), NodeId(2)]));
        assert_eq!(near, same_arch);
        assert!(far > near); // slower Intel node raises R
    }

    #[test]
    fn bottleneck_is_argmax() {
        let c = two_switch_demo();
        let snap = SystemSnapshot::no_load(&c, &c);
        let mut p = profile();
        p.procs[1].x = 20.0; // make rank 1 the straggler
        let ev = Evaluator::new(&p, &snap);
        let pred = ev.predict(&Mapping::new(vec![NodeId(0), NodeId(1)]));
        assert_eq!(pred.bottleneck, 1);
        assert!((pred.time - pred.per_proc[1].total()).abs() < 1e-12);
    }

    #[test]
    fn predict_time_agrees_with_predict() {
        let c = two_switch_demo();
        let snap = SystemSnapshot::no_load(&c, &c);
        let p = profile();
        let ev = Evaluator::new(&p, &snap);
        for nodes in [[0u32, 1], [0, 4], [4, 5], [2, 6]] {
            let m = Mapping::new(nodes.iter().map(|&i| NodeId(i)).collect());
            assert!((ev.predict(&m).time - ev.predict_time(&m)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let c = two_switch_demo();
        let snap = SystemSnapshot::no_load(&c, &c);
        let p = profile();
        let ev = Evaluator::new(&p, &snap);
        let _ = ev.predict(&Mapping::new(vec![NodeId(0)]));
    }

    #[test]
    fn oversubscription_divides_effective_speed() {
        let c = two_switch_demo();
        let snap = SystemSnapshot::no_load(&c, &c);
        let mut p = profile();
        for pp in &mut p.procs {
            pp.sends.clear();
            pp.recvs.clear();
            pp.lambda = 0.0;
        }
        let ev = Evaluator::new(&p, &snap);
        // Node 0 is a 1-CPU Alpha: both ranks there -> each at half speed.
        let shared = ev.predict_time(&Mapping::new(vec![NodeId(0), NodeId(0)]));
        let dedicated = ev.predict_time(&Mapping::new(vec![NodeId(0), NodeId(1)]));
        assert!(
            (shared / dedicated - 2.0).abs() < 1e-9,
            "{shared} vs {dedicated}"
        );
        // Node 4 is a 2-CPU Intel: two ranks share without slowdown.
        let dual = ev.predict_time(&Mapping::new(vec![NodeId(4), NodeId(4)]));
        let single = ev.predict_time(&Mapping::new(vec![NodeId(4), NodeId(5)]));
        assert!((dual - single).abs() < 1e-9);
    }

    #[test]
    fn suspect_node_inflates_r_by_the_penalty_factor() {
        use crate::health::{HealthView, NodeHealth};
        let c = two_switch_demo();
        let p = profile();
        let m = Mapping::new(vec![NodeId(0), NodeId(1)]);
        let mut snap = SystemSnapshot::no_load(&c, &c);
        let baseline = Evaluator::new(&p, &snap).predict(&m);
        let mut states = vec![NodeHealth::Healthy; c.len()];
        states[0] = NodeHealth::Suspect;
        snap.set_health(HealthView::new(states, 2.5));
        let degraded = Evaluator::new(&p, &snap).predict(&m);
        // R on the suspect node is exactly 2.5× the healthy cost; the
        // communication term is untouched.
        assert!((degraded.per_proc[0].r - baseline.per_proc[0].r * 2.5).abs() < 1e-9);
        assert_eq!(degraded.per_proc[0].c, baseline.per_proc[0].c);
        assert_eq!(degraded.per_proc[1].r, baseline.per_proc[1].r);
    }

    #[test]
    fn down_node_costs_infinity() {
        use crate::health::{HealthView, NodeHealth};
        let c = two_switch_demo();
        let p = profile();
        let mut snap = SystemSnapshot::no_load(&c, &c);
        let mut states = vec![NodeHealth::Healthy; c.len()];
        states[3] = NodeHealth::Down;
        snap.set_health(HealthView::new(states, 2.0));
        let ev = Evaluator::new(&p, &snap);
        let onto_down = ev.predict(&Mapping::new(vec![NodeId(3), NodeId(1)]));
        assert!(onto_down.time.is_infinite());
        assert_eq!(onto_down.bottleneck, 0);
        assert!(ev
            .predict_time(&Mapping::new(vec![NodeId(3), NodeId(1)]))
            .is_infinite());
        assert!(ev
            .compute_only_score(&Mapping::new(vec![NodeId(3), NodeId(1)]))
            .is_infinite());
        // Mappings that avoid the down node are unaffected.
        let clean = ev.predict(&Mapping::new(vec![NodeId(0), NodeId(1)]));
        assert!(clean.time.is_finite());
    }

    #[test]
    fn batch_evaluator_matches_sequential_predictions_exactly() {
        use crate::health::{HealthView, NodeHealth};
        let c = two_switch_demo();
        let mut load = LoadState::idle(c.len());
        load.set_cpu_avail(NodeId(0), 0.5);
        let mut snap = SystemSnapshot::new(&c, &c, LoadAdjuster::default(), load);
        let mut states = vec![NodeHealth::Healthy; c.len()];
        states[2] = NodeHealth::Suspect;
        states[3] = NodeHealth::Down;
        snap.set_health(HealthView::new(states, 2.5));
        let p = profile();
        let candidates: Vec<Mapping> = [
            [0u32, 1],
            [0, 4],
            [4, 5],
            [2, 6],
            [0, 0], // oversubscribed single-CPU node
            [3, 1], // onto the down node: infinite time
            [2, 2], // suspect node, shared
        ]
        .iter()
        .map(|nodes| Mapping::new(nodes.iter().map(|&i| NodeId(i)).collect()))
        .collect();
        let sequential: Vec<Prediction> = {
            let ev = Evaluator::new(&p, &snap);
            candidates.iter().map(|m| ev.predict(m)).collect()
        };
        let batched = BatchEvaluator::new(&p, &snap).predict_batch(&candidates);
        // Exact equality, not approximate: the batch path reads the
        // same numbers through a flatter layout with the same
        // floating-point expression order.
        assert_eq!(batched, sequential);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn batch_arity_mismatch_panics() {
        let c = two_switch_demo();
        let snap = SystemSnapshot::no_load(&c, &c);
        let p = profile();
        let _ = BatchEvaluator::new(&p, &snap).predict_batch(&[Mapping::new(vec![NodeId(0)])]);
    }

    #[test]
    fn arch_ratio_map_is_available_for_reporting() {
        let mut p = profile();
        p.arch_ratios.insert(Architecture::Sparc, 0.65);
        assert_eq!(p.arch_ratio(Architecture::Sparc), 0.65);
    }
}
