//! Remapping cost/benefit analysis.
//!
//! The paper's design calls for generating "a new mapping for that
//! application, that may yield an even shorter execution time (lower cost)
//! for the remainder of the execution, taking into account the task
//! remapping costs" (§2). This module implements that trade-off: given how
//! far execution has progressed, compare staying on the current mapping with
//! migrating to a candidate one.

use crate::eval::Evaluator;
use crate::mapping::Mapping;
use serde::{Deserialize, Serialize};

/// Model of what migrating one process costs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationCost {
    /// Checkpoint image size per process, bytes.
    pub image_bytes: u64,
    /// Effective transfer bandwidth for checkpoint images, bytes/second.
    pub transfer_bw: f64,
    /// Fixed per-process teardown + restart cost, seconds.
    pub restart_cost: f64,
    /// Fixed per-event coordination cost (quiesce, reconnect), seconds.
    pub coordination_cost: f64,
}

impl Default for MigrationCost {
    fn default() -> Self {
        MigrationCost {
            image_bytes: 64 << 20, // 64 MiB image
            transfer_bw: 12.5e6,   // fast ethernet
            restart_cost: 2.0,
            coordination_cost: 1.0,
        }
    }
}

impl MigrationCost {
    /// Total cost of migrating `moved` processes. Transfers are assumed
    /// parallel across distinct node pairs, so the transfer term is paid
    /// once, while restarts are serialised on the coordinator.
    pub fn total(&self, moved: usize) -> f64 {
        if moved == 0 {
            return 0.0;
        }
        self.coordination_cost
            + self.image_bytes as f64 / self.transfer_bw
            + self.restart_cost * moved as f64
    }
}

/// The verdict of a remapping analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum RemapDecision {
    /// Migrate: the candidate saves `saving` seconds net of migration cost.
    Remap {
        /// Net seconds saved over staying put.
        saving: f64,
    },
    /// Stay on the current mapping (candidate not worth it).
    Stay {
        /// Seconds the candidate would *lose* (≥ 0).
        deficit: f64,
    },
}

impl RemapDecision {
    /// True when the decision is to migrate.
    pub fn should_remap(&self) -> bool {
        matches!(self, RemapDecision::Remap { .. })
    }
}

/// Cost/benefit analysis of remapping a running application.
#[derive(Debug, Clone)]
pub struct RemapAnalysis {
    /// Migration cost model.
    pub cost: MigrationCost,
    /// Minimum net saving (seconds) required to trigger a remap — guards
    /// against churning on noise.
    pub threshold: f64,
}

impl Default for RemapAnalysis {
    fn default() -> Self {
        RemapAnalysis {
            cost: MigrationCost::default(),
            threshold: 1.0,
        }
    }
}

impl RemapAnalysis {
    /// Decide whether to migrate from `current` to `candidate` when a
    /// fraction `progress` (`0..1`) of the application has completed.
    ///
    /// Remaining time on either mapping is `(1 - progress) · S_M` under the
    /// *current* snapshot conditions (captured inside `evaluator`); the
    /// candidate additionally pays the migration cost for every moved rank.
    pub fn decide(
        &self,
        evaluator: &Evaluator<'_>,
        current: &Mapping,
        candidate: &Mapping,
        progress: f64,
    ) -> RemapDecision {
        let progress = progress.clamp(0.0, 1.0);
        let remain = 1.0 - progress;
        let stay = remain * evaluator.predict_time(current);
        let moved = current.moved_ranks(candidate).len();
        let go = remain * evaluator.predict_time(candidate) + self.cost.total(moved);
        let saving = stay - go;
        if saving > self.threshold {
            RemapDecision::Remap { saving }
        } else {
            RemapDecision::Stay {
                deficit: (-saving).max(0.0),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SystemSnapshot;
    use cbes_cluster::load::LoadState;
    use cbes_cluster::presets::two_switch_demo;
    use cbes_cluster::NodeId;
    use cbes_netmodel::LoadAdjuster;
    use cbes_trace::{AppProfile, MessageGroup, ProcessProfile};
    use std::collections::BTreeMap;

    fn profile(compute: f64) -> AppProfile {
        let mk = |rank: usize| ProcessProfile {
            rank,
            x: compute,
            o: 0.0,
            b: 1.0,
            sends: vec![MessageGroup {
                peer: 1 - rank,
                bytes: 4096,
                count: 200,
            }],
            recvs: vec![MessageGroup {
                peer: 1 - rank,
                bytes: 4096,
                count: 200,
            }],
            profile_speed: 1.0,
            lambda: 1.0,
        };
        AppProfile {
            name: "app".into(),
            procs: vec![mk(0), mk(1)],
            arch_ratios: BTreeMap::new(),
        }
    }

    fn m(ids: &[u32]) -> Mapping {
        Mapping::new(ids.iter().map(|&i| NodeId(i)).collect())
    }

    #[test]
    fn migration_cost_is_zero_for_no_moves() {
        assert_eq!(MigrationCost::default().total(0), 0.0);
        assert!(MigrationCost::default().total(1) > 0.0);
        assert!(MigrationCost::default().total(4) > MigrationCost::default().total(1));
    }

    #[test]
    fn heavily_loaded_current_node_triggers_remap() {
        let c = two_switch_demo();
        let mut load = LoadState::idle(c.len());
        load.set_cpu_avail(NodeId(0), 0.1); // node 0 nearly saturated
        let snap = SystemSnapshot::new(&c, &c, LoadAdjuster::default(), load);
        let p = profile(500.0);
        let ev = Evaluator::new(&p, &snap);
        let analysis = RemapAnalysis {
            cost: MigrationCost {
                restart_cost: 1.0,
                coordination_cost: 0.5,
                ..MigrationCost::default()
            },
            threshold: 1.0,
        };
        // Move rank 0 off the loaded node early in the run.
        let d = analysis.decide(&ev, &m(&[0, 1]), &m(&[2, 1]), 0.1);
        assert!(d.should_remap(), "{d:?}");
    }

    #[test]
    fn late_progress_makes_migration_pointless() {
        let c = two_switch_demo();
        let mut load = LoadState::idle(c.len());
        load.set_cpu_avail(NodeId(0), 0.1);
        let snap = SystemSnapshot::new(&c, &c, LoadAdjuster::default(), load);
        let p = profile(500.0);
        let ev = Evaluator::new(&p, &snap);
        let analysis = RemapAnalysis::default();
        // 99.9% done: the leftover saving cannot amortise migration.
        let d = analysis.decide(&ev, &m(&[0, 1]), &m(&[2, 1]), 0.999);
        assert!(!d.should_remap(), "{d:?}");
    }

    #[test]
    fn identical_candidate_never_remaps() {
        let c = two_switch_demo();
        let snap = SystemSnapshot::no_load(&c, &c);
        let p = profile(100.0);
        let ev = Evaluator::new(&p, &snap);
        let d = RemapAnalysis::default().decide(&ev, &m(&[0, 1]), &m(&[0, 1]), 0.5);
        assert_eq!(d, RemapDecision::Stay { deficit: 0.0 });
    }

    #[test]
    fn threshold_suppresses_marginal_wins() {
        let c = two_switch_demo();
        let snap = SystemSnapshot::no_load(&c, &c);
        let p = profile(100.0);
        let ev = Evaluator::new(&p, &snap);
        // Cross-switch -> same-switch saves a little communication time, but
        // with a huge threshold we stay.
        let analysis = RemapAnalysis {
            cost: MigrationCost {
                image_bytes: 0,
                restart_cost: 0.0,
                coordination_cost: 0.0,
                transfer_bw: 1.0,
            },
            threshold: 1e9,
        };
        let d = analysis.decide(&ev, &m(&[0, 4]), &m(&[0, 1]), 0.0);
        assert!(!d.should_remap());
    }
}
