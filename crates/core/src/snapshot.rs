//! On-demand snapshots of system state, combining the calibrated latency
//! model with the monitor's current load estimates.

use crate::health::{HealthView, NodeHealth};
use cbes_cluster::load::LoadState;
use cbes_cluster::{Cluster, LatencyProvider, NodeId};
use cbes_netmodel::LoadAdjuster;

/// Everything the mapping evaluation needs to know about the computing
/// system *right now*: topology-derived node data, the no-load latency
/// model, and current per-node load (paper §2: "a snapshot of resource
/// availability, system profile data").
///
/// The pairwise latency picture is derived in `O(1)` per queried pair from
/// the no-load model plus the two endpoints' load — this is the paper's
/// `O(N)`-monitoring approximation of the `O(N²)` resource picture.
pub struct SystemSnapshot<'a> {
    /// The cluster (node speeds, architectures).
    pub cluster: &'a Cluster,
    /// No-load end-to-end latency source (usually the calibrated
    /// [`cbes_netmodel::LatencyModel`]).
    no_load: &'a dyn LatencyProvider,
    /// How endpoint load inflates latency.
    pub adjuster: LoadAdjuster,
    /// Current (or forecast) per-node load.
    pub load: LoadState,
    /// Current per-node health classification (all healthy by default).
    health: HealthView,
}

impl<'a> SystemSnapshot<'a> {
    /// A snapshot with explicit load state.
    pub fn new(
        cluster: &'a Cluster,
        no_load: &'a dyn LatencyProvider,
        adjuster: LoadAdjuster,
        load: LoadState,
    ) -> Self {
        assert!(
            load.len() >= cluster.len(),
            "load state must cover every node"
        );
        let health = HealthView::all_healthy(cluster.len());
        SystemSnapshot {
            cluster,
            no_load,
            adjuster,
            load,
            health,
        }
    }

    /// A snapshot of an idle cluster (default adjuster, full availability).
    pub fn no_load(cluster: &'a Cluster, no_load: &'a dyn LatencyProvider) -> Self {
        SystemSnapshot::new(
            cluster,
            no_load,
            LoadAdjuster::default(),
            LoadState::idle(cluster.len()),
        )
    }

    /// Current CPU availability of `node` (`ACPU_j`, paper eq. 5).
    #[inline]
    pub fn acpu(&self, node: NodeId) -> f64 {
        self.load.cpu_avail(node)
    }

    /// `ACPU_j` degraded by health: `Suspect` nodes have their availability
    /// divided by the policy's suspect cost factor (inflating `R_i`), and
    /// `Down` nodes report zero availability (infinite compute cost —
    /// unmappable).
    #[inline]
    pub fn effective_acpu(&self, node: NodeId) -> f64 {
        match self.health.health(node) {
            NodeHealth::Healthy => self.acpu(node),
            NodeHealth::Suspect => self.acpu(node) / self.health.suspect_cost_factor(),
            NodeHealth::Down => 0.0,
        }
    }

    /// Health classification of `node`.
    #[inline]
    pub fn health(&self, node: NodeId) -> NodeHealth {
        self.health.health(node)
    }

    /// True unless `node` is classified `Down`.
    #[inline]
    pub fn is_usable(&self, node: NodeId) -> bool {
        self.health.is_usable(node)
    }

    /// The full health view carried by this snapshot.
    pub fn health_view(&self) -> &HealthView {
        &self.health
    }

    /// Replace the health view (e.g. with a fresh tracker classification).
    pub fn set_health(&mut self, health: HealthView) {
        self.health = health;
    }

    /// Relative speed of `node` (`Speed_j`).
    #[inline]
    pub fn speed(&self, node: NodeId) -> f64 {
        self.cluster.node(node).speed
    }

    /// Current load-adjusted latency `L_c` (paper eq. 6's latency term).
    #[inline]
    pub fn current_latency(&self, a: NodeId, b: NodeId, bytes: u64) -> f64 {
        self.adjuster
            .adjust(self.no_load.latency(a, b, bytes), &self.load, a, b)
    }

    /// Replace the load estimate (e.g. with a fresh monitor forecast).
    pub fn set_load(&mut self, load: LoadState) {
        assert!(load.len() >= self.cluster.len());
        self.load = load;
    }
}

impl LatencyProvider for SystemSnapshot<'_> {
    fn latency(&self, a: NodeId, b: NodeId, bytes: u64) -> f64 {
        self.current_latency(a, b, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbes_cluster::presets::two_switch_demo;

    #[test]
    fn no_load_snapshot_matches_model() {
        let c = two_switch_demo();
        let s = SystemSnapshot::no_load(&c, &c);
        assert_eq!(
            s.current_latency(NodeId(0), NodeId(4), 1024),
            c.no_load_latency(NodeId(0), NodeId(4), 1024)
        );
        assert_eq!(s.acpu(NodeId(0)), 1.0);
        assert_eq!(s.speed(NodeId(4)), 0.85);
    }

    #[test]
    fn loaded_snapshot_inflates_latency() {
        let c = two_switch_demo();
        let mut load = LoadState::idle(c.len());
        load.set_cpu_avail(NodeId(0), 0.5);
        let s = SystemSnapshot::new(&c, &c, LoadAdjuster::default(), load);
        assert!(
            s.current_latency(NodeId(0), NodeId(4), 1024)
                > c.no_load_latency(NodeId(0), NodeId(4), 1024)
        );
        assert_eq!(s.acpu(NodeId(0)), 0.5);
    }

    #[test]
    #[should_panic(expected = "cover every node")]
    fn short_load_state_is_rejected() {
        let c = two_switch_demo();
        let _ = SystemSnapshot::new(&c, &c, LoadAdjuster::default(), LoadState::idle(2));
    }

    #[test]
    fn default_health_is_all_healthy_and_settable() {
        use crate::health::{HealthView, NodeHealth};
        let c = two_switch_demo();
        let mut s = SystemSnapshot::no_load(&c, &c);
        assert!(s.is_usable(NodeId(0)));
        assert_eq!(s.health(NodeId(0)), NodeHealth::Healthy);
        assert_eq!(s.effective_acpu(NodeId(0)), 1.0);
        let mut states = vec![NodeHealth::Healthy; c.len()];
        states[0] = NodeHealth::Down;
        states[1] = NodeHealth::Suspect;
        s.set_health(HealthView::new(states, 4.0));
        assert!(!s.is_usable(NodeId(0)));
        assert_eq!(s.effective_acpu(NodeId(0)), 0.0);
        assert!((s.effective_acpu(NodeId(1)) - 0.25).abs() < 1e-12);
        assert_eq!(s.effective_acpu(NodeId(2)), 1.0);
    }

    #[test]
    fn set_load_updates_view() {
        let c = two_switch_demo();
        let mut s = SystemSnapshot::no_load(&c, &c);
        let before = s.current_latency(NodeId(0), NodeId(1), 64);
        let mut load = LoadState::idle(c.len());
        load.set_cpu_avail(NodeId(1), 0.4);
        s.set_load(load);
        assert!(s.current_latency(NodeId(0), NodeId(1), 64) > before);
    }
}
