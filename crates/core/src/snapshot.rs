//! On-demand snapshots of system state, combining the calibrated latency
//! model with the monitor's current load estimates.

use cbes_cluster::load::LoadState;
use cbes_cluster::{Cluster, LatencyProvider, NodeId};
use cbes_netmodel::LoadAdjuster;

/// Everything the mapping evaluation needs to know about the computing
/// system *right now*: topology-derived node data, the no-load latency
/// model, and current per-node load (paper §2: "a snapshot of resource
/// availability, system profile data").
///
/// The pairwise latency picture is derived in `O(1)` per queried pair from
/// the no-load model plus the two endpoints' load — this is the paper's
/// `O(N)`-monitoring approximation of the `O(N²)` resource picture.
pub struct SystemSnapshot<'a> {
    /// The cluster (node speeds, architectures).
    pub cluster: &'a Cluster,
    /// No-load end-to-end latency source (usually the calibrated
    /// [`cbes_netmodel::LatencyModel`]).
    no_load: &'a dyn LatencyProvider,
    /// How endpoint load inflates latency.
    pub adjuster: LoadAdjuster,
    /// Current (or forecast) per-node load.
    pub load: LoadState,
}

impl<'a> SystemSnapshot<'a> {
    /// A snapshot with explicit load state.
    pub fn new(
        cluster: &'a Cluster,
        no_load: &'a dyn LatencyProvider,
        adjuster: LoadAdjuster,
        load: LoadState,
    ) -> Self {
        assert!(
            load.len() >= cluster.len(),
            "load state must cover every node"
        );
        SystemSnapshot {
            cluster,
            no_load,
            adjuster,
            load,
        }
    }

    /// A snapshot of an idle cluster (default adjuster, full availability).
    pub fn no_load(cluster: &'a Cluster, no_load: &'a dyn LatencyProvider) -> Self {
        SystemSnapshot::new(
            cluster,
            no_load,
            LoadAdjuster::default(),
            LoadState::idle(cluster.len()),
        )
    }

    /// Current CPU availability of `node` (`ACPU_j`, paper eq. 5).
    #[inline]
    pub fn acpu(&self, node: NodeId) -> f64 {
        self.load.cpu_avail(node)
    }

    /// Relative speed of `node` (`Speed_j`).
    #[inline]
    pub fn speed(&self, node: NodeId) -> f64 {
        self.cluster.node(node).speed
    }

    /// Current load-adjusted latency `L_c` (paper eq. 6's latency term).
    #[inline]
    pub fn current_latency(&self, a: NodeId, b: NodeId, bytes: u64) -> f64 {
        self.adjuster
            .adjust(self.no_load.latency(a, b, bytes), &self.load, a, b)
    }

    /// Replace the load estimate (e.g. with a fresh monitor forecast).
    pub fn set_load(&mut self, load: LoadState) {
        assert!(load.len() >= self.cluster.len());
        self.load = load;
    }
}

impl LatencyProvider for SystemSnapshot<'_> {
    fn latency(&self, a: NodeId, b: NodeId, bytes: u64) -> f64 {
        self.current_latency(a, b, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbes_cluster::presets::two_switch_demo;

    #[test]
    fn no_load_snapshot_matches_model() {
        let c = two_switch_demo();
        let s = SystemSnapshot::no_load(&c, &c);
        assert_eq!(
            s.current_latency(NodeId(0), NodeId(4), 1024),
            c.no_load_latency(NodeId(0), NodeId(4), 1024)
        );
        assert_eq!(s.acpu(NodeId(0)), 1.0);
        assert_eq!(s.speed(NodeId(4)), 0.85);
    }

    #[test]
    fn loaded_snapshot_inflates_latency() {
        let c = two_switch_demo();
        let mut load = LoadState::idle(c.len());
        load.set_cpu_avail(NodeId(0), 0.5);
        let s = SystemSnapshot::new(&c, &c, LoadAdjuster::default(), load);
        assert!(
            s.current_latency(NodeId(0), NodeId(4), 1024)
                > c.no_load_latency(NodeId(0), NodeId(4), 1024)
        );
        assert_eq!(s.acpu(NodeId(0)), 0.5);
    }

    #[test]
    #[should_panic(expected = "cover every node")]
    fn short_load_state_is_rejected() {
        let c = two_switch_demo();
        let _ = SystemSnapshot::new(&c, &c, LoadAdjuster::default(), LoadState::idle(2));
    }

    #[test]
    fn set_load_updates_view() {
        let c = two_switch_demo();
        let mut s = SystemSnapshot::no_load(&c, &c);
        let before = s.current_latency(NodeId(0), NodeId(1), 64);
        let mut load = LoadState::idle(c.len());
        load.set_cpu_avail(NodeId(1), 0.4);
        s.set_load(load);
        assert!(s.current_latency(NodeId(0), NodeId(1), 64) > before);
    }
}
