//! The monitoring-daemon stand-in: periodic per-node load measurements fed
//! into per-node forecasters, producing the load estimate a
//! [`crate::SystemSnapshot`] carries.

use cbes_cluster::load::LoadState;
use cbes_cluster::NodeId;
use cbes_netmodel::forecast::{Adaptive, Forecaster, LastValue, RunningMean, SlidingMedian};

/// Which forecasting strategy the monitor uses per node.
///
/// `LastValue` is the Orange Grove prototype's behaviour; the others emulate
/// NWS-style forecasting as used on Centurion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForecastKind {
    /// Latest measurement is the forecast (Orange Grove prototype).
    LastValue,
    /// Windowed mean.
    Mean(usize),
    /// Windowed median.
    Median(usize),
    /// NWS-style adaptive pick-the-best ensemble (Centurion prototype).
    Adaptive(usize),
}

fn make(kind: ForecastKind, default: f64) -> Box<dyn Forecaster + Send + Sync> {
    match kind {
        ForecastKind::LastValue => Box::new(LastValue::new(default)),
        ForecastKind::Mean(w) => Box::new(RunningMean::new(w, default)),
        ForecastKind::Median(w) => Box::new(SlidingMedian::new(w, default)),
        ForecastKind::Adaptive(w) => Box::new(Adaptive::new(w, default)),
    }
}

/// Per-node CPU and NIC load monitor.
///
/// Feed it measurement sweeps with [`Monitor::observe`]; read the current
/// forecast with [`Monitor::forecast`].
pub struct Monitor {
    cpu: Vec<Box<dyn Forecaster + Send + Sync>>,
    nic: Vec<Box<dyn Forecaster + Send + Sync>>,
    observations: u64,
}

impl Monitor {
    /// A monitor over `n` nodes using the given forecasting strategy.
    /// Before any observation it forecasts an idle cluster.
    pub fn new(n: usize, kind: ForecastKind) -> Self {
        Monitor {
            cpu: (0..n).map(|_| make(kind, 1.0)).collect(),
            nic: (0..n).map(|_| make(kind, 0.0)).collect(),
            observations: 0,
        }
    }

    /// Number of nodes monitored.
    pub fn len(&self) -> usize {
        self.cpu.len()
    }

    /// True when monitoring zero nodes.
    pub fn is_empty(&self) -> bool {
        self.cpu.is_empty()
    }

    /// Number of measurement sweeps observed so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Feed one measurement sweep (the instantaneous ground truth the
    /// monitoring daemons would have measured).
    pub fn observe(&mut self, measured: &LoadState) {
        assert_eq!(measured.len(), self.cpu.len(), "node count mismatch");
        for i in 0..self.cpu.len() {
            let id = NodeId(i as u32);
            self.cpu[i].observe(measured.cpu_avail(id));
            self.nic[i].observe(measured.nic_load(id));
        }
        self.observations += 1;
    }

    /// Feed one *partial* sweep: only nodes with `reported[i] == true`
    /// delivered a measurement (crashed nodes and dropped-out monitor
    /// daemons stay silent). Non-reporting nodes keep their stale
    /// forecasts — health tracking, not forecasting, is responsible for
    /// reacting to the silence.
    pub fn observe_partial(&mut self, measured: &LoadState, reported: &[bool]) {
        assert_eq!(measured.len(), self.cpu.len(), "node count mismatch");
        assert_eq!(reported.len(), self.cpu.len(), "node count mismatch");
        for (i, &fresh) in reported.iter().enumerate() {
            if !fresh {
                continue;
            }
            let id = NodeId(i as u32);
            self.cpu[i].observe(measured.cpu_avail(id));
            self.nic[i].observe(measured.nic_load(id));
        }
        self.observations += 1;
    }

    /// The forecast load state for the next period.
    pub fn forecast(&self) -> LoadState {
        let _t = cbes_netmodel::forecast::refresh_timer();
        let mut s = LoadState::idle(self.cpu.len());
        for i in 0..self.cpu.len() {
            let id = NodeId(i as u32);
            s.set_cpu_avail(id, self.cpu[i].predict());
            s.set_nic_load(id, self.nic[i].predict());
        }
        s
    }
}

impl std::fmt::Debug for Monitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Monitor")
            .field("nodes", &self.cpu.len())
            .field("observations", &self.observations)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unobserved_monitor_forecasts_idle() {
        let m = Monitor::new(3, ForecastKind::LastValue);
        let f = m.forecast();
        for i in 0..3 {
            assert_eq!(f.cpu_avail(NodeId(i)), 1.0);
            assert_eq!(f.nic_load(NodeId(i)), 0.0);
        }
    }

    #[test]
    fn last_value_monitor_tracks_measurements() {
        let mut m = Monitor::new(2, ForecastKind::LastValue);
        let mut s = LoadState::idle(2);
        s.set_cpu_avail(NodeId(1), 0.6);
        s.set_nic_load(NodeId(0), 0.3);
        m.observe(&s);
        let f = m.forecast();
        assert_eq!(f.cpu_avail(NodeId(1)), 0.6);
        assert_eq!(f.nic_load(NodeId(0)), 0.3);
        assert_eq!(m.observations(), 1);
    }

    #[test]
    fn median_monitor_smooths_spikes() {
        let mut m = Monitor::new(1, ForecastKind::Median(5));
        for i in 0..10 {
            let mut s = LoadState::idle(1);
            s.set_cpu_avail(NodeId(0), if i == 7 { 0.1 } else { 0.9 });
            m.observe(&s);
        }
        assert!((m.forecast().cpu_avail(NodeId(0)) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn adaptive_monitor_converges_on_stable_load() {
        let mut m = Monitor::new(1, ForecastKind::Adaptive(5));
        for _ in 0..20 {
            let mut s = LoadState::idle(1);
            s.set_cpu_avail(NodeId(0), 0.75);
            m.observe(&s);
        }
        assert!((m.forecast().cpu_avail(NodeId(0)) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn partial_sweep_keeps_silent_nodes_stale() {
        let mut m = Monitor::new(2, ForecastKind::LastValue);
        let mut s = LoadState::idle(2);
        s.set_cpu_avail(NodeId(0), 0.7);
        s.set_cpu_avail(NodeId(1), 0.7);
        m.observe(&s);
        // Node 1 goes silent; ground truth moves but its forecast must not.
        s.set_cpu_avail(NodeId(0), 0.2);
        s.set_cpu_avail(NodeId(1), 0.2);
        m.observe_partial(&s, &[true, false]);
        let f = m.forecast();
        assert_eq!(f.cpu_avail(NodeId(0)), 0.2);
        assert_eq!(f.cpu_avail(NodeId(1)), 0.7);
        assert_eq!(m.observations(), 2);
    }

    #[test]
    #[should_panic(expected = "node count mismatch")]
    fn observe_rejects_wrong_arity() {
        let mut m = Monitor::new(2, ForecastKind::LastValue);
        m.observe(&LoadState::idle(3));
    }
}
