//! The application-profile database (the paper's application-dedicated
//! database tables).

use cbes_trace::AppProfile;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::path::Path;

/// Thread-safe registry of application profiles keyed by name.
///
/// Multiple scheduler clients may query the registry concurrently while the
/// profiling subsystem inserts updated profiles.
#[derive(Debug, Default)]
pub struct ProfileRegistry {
    map: RwLock<BTreeMap<String, AppProfile>>,
}

impl ProfileRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) a profile under its own name.
    pub fn insert(&self, profile: AppProfile) {
        self.map.write().insert(profile.name.clone(), profile);
    }

    /// Fetch a clone of the profile for `name`.
    pub fn get(&self, name: &str) -> Option<AppProfile> {
        self.map.read().get(name).cloned()
    }

    /// True when a profile is registered under `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.map.read().contains_key(name)
    }

    /// Remove a profile; returns it if present.
    pub fn remove(&self, name: &str) -> Option<AppProfile> {
        self.map.write().remove(name)
    }

    /// Names of all registered applications, sorted.
    pub fn names(&self) -> Vec<String> {
        self.map.read().keys().cloned().collect()
    }

    /// Number of registered profiles.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True when no profiles are registered.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// Persist every profile as `<dir>/<name>.profile.json` (the paper's
    /// durable application-database tables). Returns the number written.
    /// Profile names are sanitised for the filesystem.
    pub fn save_dir(&self, dir: &Path) -> std::io::Result<usize> {
        std::fs::create_dir_all(dir)?;
        let map = self.map.read();
        for (name, profile) in map.iter() {
            let file = format!("{}.profile.json", sanitise(name));
            std::fs::write(dir.join(file), profile.to_json())?;
        }
        Ok(map.len())
    }

    /// Load every `*.profile.json` in `dir` into a fresh registry.
    /// Malformed files are reported as errors, not skipped.
    pub fn load_dir(dir: &Path) -> std::io::Result<Self> {
        let reg = ProfileRegistry::new();
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".profile.json"))
            {
                let text = std::fs::read_to_string(&path)?;
                let profile = AppProfile::from_json(&text).map_err(|e| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("{}: {e}", path.display()),
                    )
                })?;
                reg.insert(profile);
            }
        }
        Ok(reg)
    }
}

/// Replace filesystem-hostile characters in a profile name.
fn sanitise(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '.' || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap as Map;

    fn profile(name: &str) -> AppProfile {
        AppProfile {
            name: name.into(),
            procs: vec![],
            arch_ratios: Map::new(),
        }
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let r = ProfileRegistry::new();
        assert!(r.is_empty());
        r.insert(profile("lu.A"));
        r.insert(profile("hpl"));
        assert_eq!(r.len(), 2);
        assert!(r.contains("lu.A"));
        assert_eq!(r.get("hpl").expect("hpl was just inserted").name, "hpl");
        assert_eq!(r.names(), vec!["hpl".to_string(), "lu.A".to_string()]);
        assert!(r.remove("hpl").is_some());
        assert!(r.get("hpl").is_none());
    }

    #[test]
    fn insert_replaces_existing() {
        let r = ProfileRegistry::new();
        r.insert(profile("app"));
        let mut p2 = profile("app");
        p2.arch_ratios
            .insert(cbes_cluster::Architecture::Alpha, 2.0);
        r.insert(p2);
        assert_eq!(r.len(), 1);
        assert_eq!(
            r.get("app")
                .expect("app was just inserted")
                .arch_ratio(cbes_cluster::Architecture::Alpha),
            2.0
        );
    }

    #[test]
    fn save_and_load_directory_roundtrip() {
        let dir = std::env::temp_dir().join(format!("cbes-reg-{}", std::process::id()));
        let r = ProfileRegistry::new();
        r.insert(profile("lu.A.8"));
        r.insert(profile("hpl/10000")); // hostile name gets sanitised
        assert_eq!(r.save_dir(&dir).expect("temp dir is writable"), 2);
        let loaded = ProfileRegistry::load_dir(&dir).expect("saved dir loads back");
        assert_eq!(loaded.len(), 2);
        assert!(loaded.contains("lu.A.8"));
        assert!(loaded.contains("hpl/10000")); // name survives inside the JSON
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_dir_reports_malformed_files() {
        let dir = std::env::temp_dir().join(format!("cbes-reg-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir is creatable");
        std::fs::write(dir.join("broken.profile.json"), "{ not json")
            .expect("temp dir is writable");
        assert!(ProfileRegistry::load_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let r = std::sync::Arc::new(ProfileRegistry::new());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let r = r.clone();
                std::thread::spawn(move || {
                    r.insert(profile(&format!("app{i}")));
                    r.get(&format!("app{i}")).is_some()
                })
            })
            .collect();
        for h in handles {
            assert!(h.join().expect("insert thread panicked"));
        }
        assert_eq!(r.len(), 4);
    }
}
