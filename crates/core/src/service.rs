//! The CBES service façade: accepts mapping-comparison requests from
//! external clients (schedulers), combining the profile registry with the
//! current system snapshot (paper figure 2).

use crate::error::ServiceError;
use crate::eval::{Evaluator, Prediction};
use crate::mapping::Mapping;
use crate::monitor::{ForecastKind, Monitor};
use crate::registry::ProfileRegistry;
use crate::snapshot::SystemSnapshot;
use cbes_cluster::load::LoadState;
use cbes_cluster::{Cluster, LatencyProvider};

/// The core CBES module: owns the profile registry and the monitor, and
/// serves mapping-comparison requests against the current snapshot.
pub struct CbesService<'a> {
    cluster: &'a Cluster,
    no_load: &'a dyn LatencyProvider,
    registry: ProfileRegistry,
    monitor: Monitor,
}

impl<'a> CbesService<'a> {
    /// A service over `cluster` with the given calibrated latency source and
    /// monitoring strategy.
    pub fn new(
        cluster: &'a Cluster,
        no_load: &'a dyn LatencyProvider,
        forecast: ForecastKind,
    ) -> Self {
        CbesService {
            cluster,
            no_load,
            registry: ProfileRegistry::new(),
            monitor: Monitor::new(cluster.len(), forecast),
        }
    }

    /// The application-profile registry.
    pub fn registry(&self) -> &ProfileRegistry {
        &self.registry
    }

    /// Feed a monitoring sweep (periodic load measurement).
    pub fn observe_load(&mut self, measured: &LoadState) {
        self.monitor.observe(measured);
    }

    /// The snapshot a request issued *now* would be evaluated against.
    pub fn snapshot(&self) -> SystemSnapshot<'a> {
        let mut s = SystemSnapshot::no_load(self.cluster, self.no_load);
        s.set_load(self.monitor.forecast());
        s
    }

    /// Compare candidate mappings for a registered application; returns one
    /// prediction per mapping, in request order (the paper's mapping
    /// comparison request).
    pub fn compare(
        &self,
        app: &str,
        mappings: &[Mapping],
    ) -> Result<Vec<Prediction>, ServiceError> {
        if mappings.is_empty() {
            return Err(ServiceError::EmptyRequest);
        }
        let profile = self
            .registry
            .get(app)
            .ok_or_else(|| ServiceError::UnknownApp(app.to_string()))?;
        for m in mappings {
            if m.len() != profile.num_procs() {
                return Err(ServiceError::ArityMismatch {
                    expected: profile.num_procs(),
                    got: m.len(),
                });
            }
            for (_, node) in m.iter() {
                if node.index() >= self.cluster.len() {
                    return Err(ServiceError::BadNode(node.0));
                }
            }
        }
        let snap = self.snapshot();
        let ev = Evaluator::new(&profile, &snap);
        Ok(mappings.iter().map(|m| ev.predict(m)).collect())
    }

    /// The index and prediction of the fastest mapping among candidates.
    pub fn best_of(
        &self,
        app: &str,
        mappings: &[Mapping],
    ) -> Result<(usize, Prediction), ServiceError> {
        let preds = self.compare(app, mappings)?;
        let (idx, best) = preds
            .into_iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.time.partial_cmp(&b.time).expect("times are finite"))
            .expect("compare rejects empty requests");
        Ok((idx, best))
    }
}

impl std::fmt::Debug for CbesService<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CbesService")
            .field("cluster", &self.cluster.name())
            .field("profiles", &self.registry.len())
            .field("monitor", &self.monitor)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbes_cluster::presets::two_switch_demo;
    use cbes_cluster::NodeId;
    use cbes_trace::{AppProfile, MessageGroup, ProcessProfile};
    use std::collections::BTreeMap;

    fn profile() -> AppProfile {
        let mk = |rank: usize| ProcessProfile {
            rank,
            x: 5.0,
            o: 0.2,
            b: 0.5,
            sends: vec![MessageGroup {
                peer: 1 - rank,
                bytes: 8192,
                count: 50,
            }],
            recvs: vec![MessageGroup {
                peer: 1 - rank,
                bytes: 8192,
                count: 50,
            }],
            profile_speed: 1.0,
            lambda: 1.0,
        };
        AppProfile {
            name: "app".into(),
            procs: vec![mk(0), mk(1)],
            arch_ratios: BTreeMap::new(),
        }
    }

    fn m(ids: &[u32]) -> Mapping {
        Mapping::new(ids.iter().map(|&i| NodeId(i)).collect())
    }

    #[test]
    fn compare_orders_predictions_by_request() {
        let c = two_switch_demo();
        let mut svc = CbesService::new(&c, &c, ForecastKind::LastValue);
        svc.registry().insert(profile());
        let preds = svc.compare("app", &[m(&[0, 1]), m(&[0, 4])]).unwrap();
        assert_eq!(preds.len(), 2);
        assert!(preds[0].time < preds[1].time, "same-switch must win");
        let _ = &mut svc;
    }

    #[test]
    fn best_of_picks_fastest() {
        let c = two_switch_demo();
        let svc = CbesService::new(&c, &c, ForecastKind::LastValue);
        svc.registry().insert(profile());
        let (idx, pred) = svc
            .best_of("app", &[m(&[0, 4]), m(&[0, 1]), m(&[4, 5])])
            .unwrap();
        assert_eq!(idx, 1);
        assert!(pred.time > 0.0);
    }

    #[test]
    fn monitor_feeds_snapshot() {
        let c = two_switch_demo();
        let mut svc = CbesService::new(&c, &c, ForecastKind::LastValue);
        svc.registry().insert(profile());
        let idle_pred = svc.compare("app", &[m(&[0, 1])]).unwrap()[0].time;
        let mut measured = LoadState::idle(c.len());
        measured.set_cpu_avail(NodeId(0), 0.5);
        svc.observe_load(&measured);
        let loaded_pred = svc.compare("app", &[m(&[0, 1])]).unwrap()[0].time;
        assert!(loaded_pred > idle_pred * 1.5);
    }

    #[test]
    fn errors_are_reported() {
        let c = two_switch_demo();
        let svc = CbesService::new(&c, &c, ForecastKind::LastValue);
        assert_eq!(
            svc.compare("nope", &[m(&[0, 1])]).unwrap_err(),
            ServiceError::UnknownApp("nope".into())
        );
        svc.registry().insert(profile());
        assert_eq!(
            svc.compare("app", &[]).unwrap_err(),
            ServiceError::EmptyRequest
        );
        assert!(matches!(
            svc.compare("app", &[m(&[0])]).unwrap_err(),
            ServiceError::ArityMismatch { expected: 2, got: 1 }
        ));
        assert_eq!(
            svc.compare("app", &[m(&[0, 99])]).unwrap_err(),
            ServiceError::BadNode(99)
        );
    }
}
