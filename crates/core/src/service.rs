//! The CBES service façade: accepts mapping-comparison requests from
//! external clients (schedulers), combining the profile registry with the
//! current system snapshot (paper figure 2).
//!
//! The service is shareable across threads (`Arc<CbesService>`): the
//! monitor sits behind a write lock, while readers evaluate against an
//! epoch-stamped load forecast cached in an `Arc` — a `Compare` request
//! clones that `Arc` under a brief read lock and then runs entirely
//! lock-free. Each `observe_load` bumps the epoch and replaces the cached
//! forecast, so predictions are bit-identical within an epoch and change
//! deterministically across epochs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::error::ServiceError;
use crate::eval::{BatchEvaluator, Evaluator, Prediction};
use crate::health::{HealthPolicy, HealthTracker, HealthView};
use crate::mapping::Mapping;
use crate::monitor::{ForecastKind, Monitor};
use crate::registry::ProfileRegistry;
use crate::snapshot::SystemSnapshot;
use cbes_cluster::load::LoadState;
use cbes_cluster::{Cluster, LatencyProvider};
use cbes_obs::{names, Counter, Gauge, Histogram, Registry};
use parking_lot::RwLock;

/// Handles into [`Registry::global`] for the service's hot paths,
/// resolved once so per-request updates never touch the registry lock.
struct CoreInstruments {
    compares: Arc<Counter>,
    predictions: Arc<Counter>,
    compare_us: Arc<Histogram>,
    epoch_publish_us: Arc<Histogram>,
    epoch: Arc<Gauge>,
    health_transitions: Arc<Counter>,
    healthy: Arc<Gauge>,
    suspect: Arc<Gauge>,
    down: Arc<Gauge>,
}

fn instruments() -> &'static CoreInstruments {
    static INSTRUMENTS: OnceLock<CoreInstruments> = OnceLock::new();
    INSTRUMENTS.get_or_init(|| {
        let r = Registry::global();
        CoreInstruments {
            compares: r.counter(names::CORE_COMPARES),
            predictions: r.counter(names::CORE_PREDICTIONS),
            compare_us: r.histogram(names::CORE_COMPARE_US),
            epoch_publish_us: r.histogram(names::CORE_EPOCH_PUBLISH_US),
            epoch: r.gauge(names::CORE_EPOCH),
            health_transitions: r.counter(names::CORE_HEALTH_TRANSITIONS),
            healthy: r.gauge(names::CORE_HEALTH_HEALTHY),
            suspect: r.gauge(names::CORE_HEALTH_SUSPECT),
            down: r.gauge(names::CORE_HEALTH_DOWN),
        }
    })
}

/// A load forecast stamped with the observation epoch that produced it.
///
/// The active no-load latency model rides in the same `Arc` as the load
/// and health views: the cached `Arc<EpochLoad>` is the service's single
/// atomic publication unit, so a request never sees a new model with an
/// old epoch (or vice versa) — live reconfiguration is one `Arc` swap,
/// exactly like a load sweep.
#[derive(Clone)]
pub struct EpochLoad {
    /// Monotone counter: 0 before any observation, +1 per `observe_load`
    /// and +1 per artifact activation.
    pub epoch: u64,
    /// The monitor's forecast as of that epoch.
    pub load: LoadState,
    /// Per-node health classification as of that epoch.
    pub health: HealthView,
    /// The no-load latency model active as of that epoch.
    pub model: Arc<dyn LatencyProvider + Send + Sync>,
}

impl std::fmt::Debug for EpochLoad {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochLoad")
            .field("epoch", &self.epoch)
            .field("load", &self.load)
            .field("health", &self.health)
            .finish_non_exhaustive()
    }
}

/// The core CBES module: owns the profile registry and the monitor, and
/// serves mapping-comparison requests against the current snapshot.
pub struct CbesService {
    cluster: Arc<Cluster>,
    no_load: Arc<dyn LatencyProvider + Send + Sync>,
    registry: ProfileRegistry,
    monitor: RwLock<Monitor>,
    /// Staleness-driven per-node health, updated alongside the monitor.
    health: RwLock<HealthTracker>,
    /// Epoch of the cached forecast, readable without any lock.
    epoch: AtomicU64,
    /// Latest forecast; replaced wholesale on observation, so readers
    /// hold the lock only long enough to clone the `Arc`.
    cached: RwLock<Arc<EpochLoad>>,
}

impl CbesService {
    /// A service over `cluster` with the given calibrated latency source
    /// and monitoring strategy.
    pub fn new(
        cluster: Arc<Cluster>,
        no_load: Arc<dyn LatencyProvider + Send + Sync>,
        forecast: ForecastKind,
    ) -> Self {
        let n = cluster.len();
        let initial = Arc::new(EpochLoad {
            epoch: 0,
            load: LoadState::idle(n),
            health: HealthView::all_healthy(n),
            model: no_load.clone(),
        });
        CbesService {
            cluster,
            no_load,
            registry: ProfileRegistry::new(),
            monitor: RwLock::new(Monitor::new(n, forecast)),
            health: RwLock::new(HealthTracker::new(n, HealthPolicy::default())),
            epoch: AtomicU64::new(0),
            cached: RwLock::new(initial),
        }
    }

    /// Replace the health policy (staleness deadlines and suspect penalty).
    /// Resets the tracker; intended for configuration at startup.
    pub fn with_health_policy(self, policy: HealthPolicy) -> Self {
        *self.health.write() = HealthTracker::new(self.cluster.len(), policy);
        self
    }

    /// A service whose no-load latencies come from the cluster's own
    /// analytic topology model (no separate calibration).
    pub fn self_calibrated(cluster: Arc<Cluster>, forecast: ForecastKind) -> Self {
        let no_load: Arc<dyn LatencyProvider + Send + Sync> = cluster.clone();
        CbesService::new(cluster, no_load, forecast)
    }

    /// The cluster this service evaluates against.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The application-profile registry.
    pub fn registry(&self) -> &ProfileRegistry {
        &self.registry
    }

    /// Epoch of the forecast requests are currently evaluated against.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Number of measurement sweeps observed so far.
    pub fn observations(&self) -> u64 {
        self.monitor.read().observations()
    }

    /// Feed a monitoring sweep (periodic load measurement). Bumps the
    /// snapshot epoch and refreshes the cached forecast; returns the new
    /// epoch. Concurrent observers are serialised; readers are never
    /// blocked for longer than an `Arc` swap.
    pub fn observe_load(&self, measured: &LoadState) -> Result<u64, ServiceError> {
        self.observe_sweep(measured, None)
    }

    /// Feed a *partial* monitoring sweep: only nodes with
    /// `reported[i] == true` delivered a measurement. Silent nodes keep
    /// stale forecasts and age toward `Suspect`/`Down` under the health
    /// policy. Returns the new epoch.
    pub fn observe_load_partial(
        &self,
        measured: &LoadState,
        reported: &[bool],
    ) -> Result<u64, ServiceError> {
        self.observe_sweep(measured, Some(reported))
    }

    /// Apply a leader-published sweep at the leader's `epoch` (snapshot
    /// replication). The sweep is adopted only when `epoch` is strictly
    /// newer than this instance's snapshot, so replays and reordered
    /// deliveries are idempotent no-ops. Returns the instance's epoch
    /// after the call and whether the sweep was applied. When this
    /// instance later becomes the leader, its own observations continue
    /// from the adopted epoch, keeping the tier's epoch line monotone.
    pub fn observe_replicated(
        &self,
        epoch: u64,
        measured: &LoadState,
        reported: Option<&[bool]>,
    ) -> Result<(u64, bool), ServiceError> {
        self.observe_checked(measured, reported, Some(epoch))
    }

    fn observe_sweep(
        &self,
        measured: &LoadState,
        reported: Option<&[bool]>,
    ) -> Result<u64, ServiceError> {
        self.observe_checked(measured, reported, None)
            .map(|(epoch, _)| epoch)
    }

    /// Shared sweep path. `target`: `None` bumps the epoch by one (a
    /// locally observed sweep); `Some(e)` adopts the replicated epoch
    /// `e` if newer, else leaves all state untouched.
    fn observe_checked(
        &self,
        measured: &LoadState,
        reported: Option<&[bool]>,
        target: Option<u64>,
    ) -> Result<(u64, bool), ServiceError> {
        let n = self.cluster.len();
        if measured.len() != n {
            return Err(ServiceError::LoadArityMismatch {
                expected: n,
                got: measured.len(),
            });
        }
        if let Some(mask) = reported {
            if mask.len() != n {
                return Err(ServiceError::LoadArityMismatch {
                    expected: n,
                    got: mask.len(),
                });
            }
        }
        let obs = instruments();
        let _span = Registry::global().span(names::SPAN_CORE_PUBLISH_EPOCH);
        let publish = obs.epoch_publish_us.start_timer();
        let mut monitor = self.monitor.write();
        let mut tracker = self.health.write();
        // Staleness check happens under the monitor lock so concurrent
        // replications cannot interleave with the epoch store below.
        let current = self.epoch.load(Ordering::Acquire);
        if let Some(target) = target {
            if target <= current {
                return Ok((current, false));
            }
        }
        let changed = match reported {
            None => {
                monitor.observe(measured);
                tracker.record_full_sweep()
            }
            Some(mask) => {
                monitor.observe_partial(measured, mask);
                tracker.record_sweep(mask)
            }
        };
        let load = monitor.forecast();
        let health = tracker.view();
        let (h, s, d) = health.counts();
        // Epoch bump and cache swap stay under the monitor lock so two
        // concurrent observers cannot publish forecasts out of order.
        let epoch = match target {
            None => current + 1,
            Some(target) => target,
        };
        self.epoch.store(epoch, Ordering::Release);
        let model = self.cached.read().model.clone();
        *self.cached.write() = Arc::new(EpochLoad {
            epoch,
            load,
            health,
            model,
        });
        drop(tracker);
        drop(publish);
        obs.epoch.set(epoch as f64);
        obs.health_transitions.add(changed);
        obs.healthy.set(h as f64);
        obs.suspect.set(s as f64);
        obs.down.set(d as f64);
        Ok((epoch, true))
    }

    /// Counts of nodes per health state as of the current epoch:
    /// `(healthy, suspect, down)`.
    pub fn health_counts(&self) -> (usize, usize, usize) {
        self.current_load().health.counts()
    }

    /// Cumulative health-state transitions since startup.
    pub fn health_transitions(&self) -> u64 {
        self.health.read().transitions()
    }

    /// The epoch-stamped forecast requests are evaluated against.
    pub fn current_load(&self) -> Arc<EpochLoad> {
        self.cached.read().clone()
    }

    /// The evaluation snapshot for one epoch-stamped forecast. Callers
    /// pin an epoch with [`CbesService::current_load`], then build the
    /// snapshot against it:
    ///
    /// ```ignore
    /// let cached = service.current_load();
    /// let snapshot = service.snapshot_of(&cached);
    /// ```
    ///
    /// The two-step shape (rather than a single `snapshot()`) exists
    /// because the snapshot borrows the epoch's latency model, which
    /// lives inside the cached [`EpochLoad`]: the caller must keep the
    /// `Arc` alive for as long as the snapshot is in use. In exchange,
    /// everything a request reads — load, health, model, epoch — comes
    /// from one atomic publication.
    pub fn snapshot_of<'a>(&'a self, cached: &'a EpochLoad) -> SystemSnapshot<'a> {
        let mut s = SystemSnapshot::no_load(&self.cluster, &*cached.model);
        s.set_load(cached.load.clone());
        s.set_health(cached.health.clone());
        s
    }

    /// Atomically activate a new no-load latency model: exactly one
    /// epoch bump, publishing the model together with the current load
    /// and health views as a single `Arc` swap. In-flight requests
    /// finish against the epoch they pinned; every request admitted
    /// after the swap sees the new model. Returns the new epoch.
    pub fn activate_provider(&self, provider: Arc<dyn LatencyProvider + Send + Sync>) -> u64 {
        self.republish(Some(provider))
    }

    /// Reinstate the boot-time latency model (artifact rollback with no
    /// previously accepted artifact). One epoch bump, like any
    /// activation. Returns the new epoch.
    pub fn activate_boot_provider(&self) -> u64 {
        self.republish(Some(self.no_load.clone()))
    }

    /// Bump the snapshot epoch without changing the model, load, or
    /// health views, republishing the current configuration so the
    /// change is observable tier-wide. Returns the new epoch.
    pub fn bump_epoch(&self) -> u64 {
        self.republish(None)
    }

    /// Shared activation path: serialise with observers on the monitor
    /// lock, bump the epoch by one, republish the cached forecast with
    /// `model` (or the current model when `None`).
    fn republish(&self, model: Option<Arc<dyn LatencyProvider + Send + Sync>>) -> u64 {
        let obs = instruments();
        let _span = Registry::global().span(names::SPAN_CORE_PUBLISH_EPOCH);
        let publish = obs.epoch_publish_us.start_timer();
        // The monitor write lock serialises activations with load
        // sweeps, so two publications can never race the epoch store
        // and cache swap below.
        let _monitor = self.monitor.write();
        let current = self.cached.read().clone();
        let epoch = self.epoch.load(Ordering::Acquire) + 1;
        self.epoch.store(epoch, Ordering::Release);
        *self.cached.write() = Arc::new(EpochLoad {
            epoch,
            load: current.load.clone(),
            health: current.health.clone(),
            model: model.unwrap_or_else(|| current.model.clone()),
        });
        drop(publish);
        obs.epoch.set(epoch as f64);
        epoch
    }

    /// Validate `mappings` against `profile_procs`, the cluster, and the
    /// current health view: non-empty, correct arity, known nodes, no node
    /// oversubscribed beyond its CPU count (the same census `Evaluator`
    /// uses for CPU shares), and no process on a `Down` node — all
    /// surfaced as typed errors at the service boundary.
    fn validate(
        &self,
        profile_procs: usize,
        mappings: &[Mapping],
        health: &HealthView,
    ) -> Result<(), ServiceError> {
        if mappings.is_empty() {
            return Err(ServiceError::EmptyRequest);
        }
        let mut ranks_on = vec![0usize; self.cluster.len()];
        for m in mappings {
            if m.len() != profile_procs {
                return Err(ServiceError::ArityMismatch {
                    expected: profile_procs,
                    got: m.len(),
                });
            }
            for (_, node) in m.iter() {
                if node.index() >= self.cluster.len() {
                    return Err(ServiceError::BadNode(node.0));
                }
                if !health.is_usable(node) {
                    return Err(ServiceError::NodeDown(node.0));
                }
            }
            ranks_on.iter_mut().for_each(|c| *c = 0);
            for (_, node) in m.iter() {
                // Bounds pre-validated by the BadNode check above.
                if let Some(count) = ranks_on.get_mut(node.index()) {
                    *count += 1;
                }
            }
            for (i, &ranks) in ranks_on.iter().enumerate() {
                let cpus = self.cluster.node(cbes_cluster::NodeId(i as u32)).cpus;
                if ranks > cpus as usize {
                    return Err(ServiceError::Oversubscribed {
                        node: i as u32,
                        ranks,
                        cpus,
                    });
                }
            }
        }
        Ok(())
    }

    /// Compare candidate mappings for a registered application; returns one
    /// prediction per mapping, in request order (the paper's mapping
    /// comparison request).
    pub fn compare(
        &self,
        app: &str,
        mappings: &[Mapping],
    ) -> Result<Vec<Prediction>, ServiceError> {
        self.compare_stamped(app, mappings).map(|(_, preds)| preds)
    }

    /// Like [`CbesService::compare`], also reporting the snapshot epoch
    /// the predictions were computed against.
    pub fn compare_stamped(
        &self,
        app: &str,
        mappings: &[Mapping],
    ) -> Result<(u64, Vec<Prediction>), ServiceError> {
        let profile = self
            .registry
            .get(app)
            .ok_or_else(|| ServiceError::UnknownApp(app.to_string()))?;
        let cached = self.current_load();
        let epoch = cached.epoch;
        let snap = self.snapshot_of(&cached);
        self.validate(profile.num_procs(), mappings, snap.health_view())?;
        let obs = instruments();
        let _span = Registry::global().span(names::SPAN_CORE_EVALUATE_MAPPING);
        let timer = obs.compare_us.start_timer();
        let ev = Evaluator::new(&profile, &snap);
        let predictions: Vec<Prediction> = mappings.iter().map(|m| ev.predict(m)).collect();
        drop(timer);
        obs.compares.incr();
        obs.predictions.add(predictions.len() as u64);
        Ok((epoch, predictions))
    }

    /// Batch variant of [`CbesService::compare_stamped`]: evaluate many
    /// candidates against one snapshot through the struct-of-arrays
    /// [`BatchEvaluator`], which flattens the profile and snapshot once
    /// and reuses its census buffer across the whole set. Predictions
    /// are identical to `compare_stamped` on the same epoch; only the
    /// per-candidate constant factor differs.
    pub fn batch_stamped(
        &self,
        app: &str,
        mappings: &[Mapping],
    ) -> Result<(u64, Vec<Prediction>), ServiceError> {
        let profile = self
            .registry
            .get(app)
            .ok_or_else(|| ServiceError::UnknownApp(app.to_string()))?;
        let cached = self.current_load();
        let epoch = cached.epoch;
        let snap = self.snapshot_of(&cached);
        self.validate(profile.num_procs(), mappings, snap.health_view())?;
        let obs = instruments();
        let _span = Registry::global().span(names::SPAN_CORE_BATCH_EVALUATE);
        let timer = obs.compare_us.start_timer();
        let ev = BatchEvaluator::new(&profile, &snap);
        let predictions = ev.predict_batch(mappings);
        drop(timer);
        obs.compares.incr();
        obs.predictions.add(predictions.len() as u64);
        Ok((epoch, predictions))
    }

    /// The index and prediction of the fastest mapping among candidates.
    pub fn best_of(
        &self,
        app: &str,
        mappings: &[Mapping],
    ) -> Result<(usize, Prediction), ServiceError> {
        let preds = self.compare(app, mappings)?;
        let (idx, best) = preds
            .into_iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.time.total_cmp(&b.time))
            .expect("compare rejects empty requests");
        Ok((idx, best))
    }
}

impl std::fmt::Debug for CbesService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CbesService")
            .field("cluster", &self.cluster.name())
            .field("profiles", &self.registry.len())
            .field("epoch", &self.epoch())
            .field("monitor", &*self.monitor.read())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbes_cluster::presets::two_switch_demo;
    use cbes_cluster::NodeId;
    use cbes_trace::{AppProfile, MessageGroup, ProcessProfile};
    use std::collections::BTreeMap;

    fn profile() -> AppProfile {
        let mk = |rank: usize| ProcessProfile {
            rank,
            x: 5.0,
            o: 0.2,
            b: 0.5,
            sends: vec![MessageGroup {
                peer: 1 - rank,
                bytes: 8192,
                count: 50,
            }],
            recvs: vec![MessageGroup {
                peer: 1 - rank,
                bytes: 8192,
                count: 50,
            }],
            profile_speed: 1.0,
            lambda: 1.0,
        };
        AppProfile {
            name: "app".into(),
            procs: vec![mk(0), mk(1)],
            arch_ratios: BTreeMap::new(),
        }
    }

    fn m(ids: &[u32]) -> Mapping {
        Mapping::new(ids.iter().map(|&i| NodeId(i)).collect())
    }

    fn demo_service() -> CbesService {
        let svc =
            CbesService::self_calibrated(Arc::new(two_switch_demo()), ForecastKind::LastValue);
        svc.registry().insert(profile());
        svc
    }

    #[test]
    fn compare_orders_predictions_by_request() {
        let svc = demo_service();
        let preds = svc
            .compare("app", &[m(&[0, 1]), m(&[0, 4])])
            .expect("demo mappings are valid");
        assert_eq!(preds.len(), 2);
        assert!(preds[0].time < preds[1].time, "same-switch must win");
    }

    #[test]
    fn best_of_picks_fastest() {
        let svc = demo_service();
        let (idx, pred) = svc
            .best_of("app", &[m(&[0, 4]), m(&[0, 1]), m(&[4, 5])])
            .expect("demo mappings are valid");
        assert_eq!(idx, 1);
        assert!(pred.time > 0.0);
    }

    #[test]
    fn batch_equals_sequential_compares_at_the_same_epoch() {
        let svc = demo_service();
        let mut measured = LoadState::idle(svc.cluster().len());
        measured.set_cpu_avail(NodeId(1), 0.75);
        svc.observe_load(&measured)
            .expect("sweep covers every node");
        let candidates = [m(&[0, 1]), m(&[0, 4]), m(&[4, 5]), m(&[2, 6])];
        let (batch_epoch, batched) = svc
            .batch_stamped("app", &candidates)
            .expect("demo mappings are valid");
        let (seq_epoch, sequential) = svc
            .compare_stamped("app", &candidates)
            .expect("demo mappings are valid");
        assert_eq!(batch_epoch, seq_epoch);
        assert_eq!(batched, sequential, "batch must be bit-identical");
        // Boundary validation is shared with compare.
        assert_eq!(
            svc.batch_stamped("app", &[]).unwrap_err(),
            ServiceError::EmptyRequest
        );
        assert_eq!(
            svc.batch_stamped("nope", &candidates).unwrap_err(),
            ServiceError::UnknownApp("nope".into())
        );
    }

    #[test]
    fn activation_is_one_epoch_bump_and_pinned_snapshots_keep_their_model() {
        struct Flat(f64);
        impl cbes_cluster::LatencyProvider for Flat {
            fn latency(&self, _: NodeId, _: NodeId, _: u64) -> f64 {
                self.0
            }
        }
        let svc = demo_service();
        let base = svc.compare("app", &[m(&[0, 4])]).expect("valid")[0].clone();
        // An in-flight request pins the pre-activation epoch.
        let pinned = svc.current_load();
        let before = svc.epoch();

        let epoch = svc.activate_provider(Arc::new(Flat(0.5)));
        assert_eq!(epoch, before + 1, "activation is exactly one epoch bump");
        assert_eq!(svc.epoch(), epoch);

        // New requests evaluate against the new model (0.5 s per hop
        // dwarfs the demo fabric), the pinned snapshot against the old.
        let after = svc.compare("app", &[m(&[0, 4])]).expect("valid")[0].clone();
        assert!(
            after.time > base.time,
            "flat 0.5 s hops must slow the forecast ({} vs {})",
            after.time,
            base.time
        );
        let old_snap = svc.snapshot_of(&pinned);
        let fresh = svc.current_load();
        let new_snap = svc.snapshot_of(&fresh);
        assert!(old_snap.latency(NodeId(0), NodeId(4), 8192) < 0.5);
        assert!((new_snap.latency(NodeId(0), NodeId(4), 8192) - 0.5).abs() < 1e-12);

        // A bare epoch bump republishes the same model.
        let bumped = svc.bump_epoch();
        assert_eq!(bumped, epoch + 1);
        let same = svc.compare("app", &[m(&[0, 4])]).expect("valid")[0].clone();
        assert_eq!(same, after);

        // Boot reactivation restores the original predictions.
        svc.activate_boot_provider();
        let restored = svc.compare("app", &[m(&[0, 4])]).expect("valid")[0].clone();
        assert_eq!(restored, base);

        // Load observations carry the active model forward.
        svc.activate_provider(Arc::new(Flat(0.5)));
        svc.observe_load(&LoadState::idle(svc.cluster().len()))
            .expect("sweep covers every node");
        let swept = svc.current_load();
        let snap = svc.snapshot_of(&swept);
        assert!((snap.latency(NodeId(0), NodeId(4), 8192) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn monitor_feeds_snapshot_and_bumps_epoch() {
        let svc = demo_service();
        assert_eq!(svc.epoch(), 0);
        let idle_pred = svc
            .compare("app", &[m(&[0, 1])])
            .expect("demo mapping is valid")[0]
            .time;
        let mut measured = LoadState::idle(svc.cluster().len());
        measured.set_cpu_avail(NodeId(0), 0.5);
        assert_eq!(
            svc.observe_load(&measured)
                .expect("sweep covers every node"),
            1
        );
        assert_eq!(svc.epoch(), 1);
        let (epoch, preds) = svc
            .compare_stamped("app", &[m(&[0, 1])])
            .expect("demo mapping is valid");
        assert_eq!(epoch, 1);
        assert!(preds[0].time > idle_pred * 1.5);
    }

    #[test]
    fn errors_are_reported() {
        let svc = demo_service();
        assert_eq!(
            svc.compare("nope", &[m(&[0, 1])]).unwrap_err(),
            ServiceError::UnknownApp("nope".into())
        );
        assert_eq!(
            svc.compare("app", &[]).unwrap_err(),
            ServiceError::EmptyRequest
        );
        assert!(matches!(
            svc.compare("app", &[m(&[0])]).unwrap_err(),
            ServiceError::ArityMismatch {
                expected: 2,
                got: 1
            }
        ));
        assert_eq!(
            svc.compare("app", &[m(&[0, 99])]).unwrap_err(),
            ServiceError::BadNode(99)
        );
    }

    #[test]
    fn oversubscribed_mapping_is_rejected_at_the_boundary() {
        let svc = demo_service();
        // Node 0 is a 1-CPU Alpha: two ranks there must be refused.
        assert_eq!(
            svc.compare("app", &[m(&[0, 0])]).unwrap_err(),
            ServiceError::Oversubscribed {
                node: 0,
                ranks: 2,
                cpus: 1
            }
        );
        // Node 4 is a 2-CPU Intel: two ranks there are fine.
        assert!(svc.compare("app", &[m(&[4, 4])]).is_ok());
    }

    #[test]
    fn short_load_sweep_is_a_typed_error() {
        let svc = demo_service();
        let n = svc.cluster().len();
        assert_eq!(
            svc.observe_load(&LoadState::idle(2)).unwrap_err(),
            ServiceError::LoadArityMismatch {
                expected: n,
                got: 2
            }
        );
        assert_eq!(svc.epoch(), 0, "failed observation must not bump epoch");
    }

    #[test]
    fn evaluation_and_epoch_publication_record_into_the_global_registry() {
        let r = Registry::global();
        let compares_before = r.counter("core.compares").get();
        let hist_before = r.histogram("core.compare_us").count();
        let publishes_before = r.histogram("core.epoch_publish_us").count();

        let svc = demo_service();
        svc.compare("app", &[m(&[0, 1]), m(&[0, 4])])
            .expect("demo mappings are valid");
        svc.observe_load(&LoadState::idle(svc.cluster().len()))
            .expect("sweep covers every node");

        // Other tests in this binary share the global registry, so check
        // deltas, not absolutes.
        let snap = r.snapshot();
        assert!(snap.counters["core.compares"] > compares_before);
        assert!(snap.counters["core.predictions"] >= 2);
        assert!(snap.histograms["core.compare_us"].count > hist_before);
        assert!(snap.histograms["core.epoch_publish_us"].count > publishes_before);
        assert!(snap.gauges["core.epoch"] >= 1.0);
        assert!(snap.spans_buffered >= 1, "spans land in the global ring");
    }

    #[test]
    fn silent_node_degrades_to_down_and_is_rejected() {
        use crate::health::HealthPolicy;
        let svc = demo_service().with_health_policy(HealthPolicy {
            suspect_after: 1,
            down_after: 2,
            suspect_cost_factor: 2.0,
        });
        let n = svc.cluster().len();
        let idle = LoadState::idle(n);
        let mut mask = vec![true; n];
        mask[0] = false;
        // Node 0 silent for 4 sweeps: age 1 (healthy), 2 (suspect), 3+ (down).
        for _ in 0..4 {
            svc.observe_load_partial(&idle, &mask)
                .expect("sweep covers every node");
        }
        assert_eq!(svc.health_counts(), (n - 1, 0, 1));
        assert!(svc.health_transitions() >= 2);
        assert_eq!(
            svc.compare("app", &[m(&[0, 1])]).unwrap_err(),
            ServiceError::NodeDown(0)
        );
        // Mappings avoiding the down node still evaluate.
        assert!(svc.compare("app", &[m(&[1, 2])]).is_ok());
        // A fresh report heals the node and lifts the rejection.
        svc.observe_load(&idle).expect("sweep covers every node");
        assert_eq!(svc.health_counts(), (n, 0, 0));
        assert!(svc.compare("app", &[m(&[0, 1])]).is_ok());
    }

    #[test]
    fn suspect_node_predictions_are_inflated_not_rejected() {
        use crate::health::HealthPolicy;
        let svc = demo_service().with_health_policy(HealthPolicy {
            suspect_after: 0,
            down_after: 100,
            suspect_cost_factor: 3.0,
        });
        let n = svc.cluster().len();
        let idle = LoadState::idle(n);
        let baseline = svc
            .compare("app", &[m(&[0, 1])])
            .expect("demo mapping is valid")[0]
            .clone();
        let mut mask = vec![true; n];
        mask[0] = false;
        for _ in 0..2 {
            svc.observe_load_partial(&idle, &mask)
                .expect("sweep covers every node");
        }
        assert_eq!(svc.health_counts(), (n - 1, 1, 0));
        let degraded = svc
            .compare("app", &[m(&[0, 1])])
            .expect("demo mapping is valid")[0]
            .clone();
        assert!((degraded.per_proc[0].r - baseline.per_proc[0].r * 3.0).abs() < 1e-9);
    }

    #[test]
    fn health_gauges_land_in_the_global_registry() {
        use crate::health::HealthPolicy;
        let svc = demo_service().with_health_policy(HealthPolicy {
            suspect_after: 0,
            down_after: 1,
            suspect_cost_factor: 2.0,
        });
        let n = svc.cluster().len();
        let r = Registry::global();
        let before = r.counter("core.health.transitions").get();
        let mut mask = vec![true; n];
        mask[0] = false;
        for _ in 0..3 {
            svc.observe_load_partial(&LoadState::idle(n), &mask)
                .expect("sweep covers every node");
        }
        let snap = r.snapshot();
        assert!(snap.counters["core.health.transitions"] > before);
        assert!(snap.gauges.contains_key("core.health.healthy"));
        assert!(snap.gauges.contains_key("core.health.suspect"));
        assert!(snap.gauges.contains_key("core.health.down"));
    }

    #[test]
    fn replicated_sweeps_adopt_only_newer_epochs() {
        let leader = demo_service();
        let follower = demo_service();
        let n = leader.cluster().len();
        let mut measured = LoadState::idle(n);
        measured.set_cpu_avail(NodeId(0), 0.25);

        // Leader observes locally; follower adopts the published epoch.
        let epoch = leader
            .observe_load(&measured)
            .expect("sweep covers every node");
        assert_eq!(epoch, 1);
        let (e, applied) = follower
            .observe_replicated(epoch, &measured, None)
            .expect("sweep covers every node");
        assert_eq!((e, applied), (1, true));
        assert_eq!(follower.epoch(), 1);
        // Follower's forecast matches the leader's for the same sweep.
        assert_eq!(follower.current_load().load, leader.current_load().load);

        // Replaying the same epoch (or an older one) is a no-op.
        let (e, applied) = follower
            .observe_replicated(epoch, &LoadState::idle(n), None)
            .expect("sweep covers every node");
        assert_eq!((e, applied), (1, false));
        assert_eq!(
            follower.current_load().load,
            leader.current_load().load,
            "stale replication must not disturb the snapshot"
        );

        // Epoch gaps are fine: adopt epoch 5 directly, then a local
        // observation continues the line at 6 (leader failover).
        let (e, applied) = follower
            .observe_replicated(5, &measured, None)
            .expect("sweep covers every node");
        assert_eq!((e, applied), (5, true));
        assert_eq!(
            follower
                .observe_load(&measured)
                .expect("sweep covers every node"),
            6
        );
    }

    #[test]
    fn replicated_partial_sweeps_age_silent_nodes() {
        let svc = demo_service().with_health_policy(HealthPolicy {
            suspect_after: 1,
            down_after: 100,
            suspect_cost_factor: 2.0,
        });
        let n = svc.cluster().len();
        let mut mask = vec![true; n];
        mask[0] = false;
        for epoch in 1..=3u64 {
            let (e, applied) = svc
                .observe_replicated(epoch, &LoadState::idle(n), Some(&mask))
                .expect("sweep covers every node");
            assert!(applied);
            assert_eq!(e, epoch);
        }
        assert_eq!(svc.health_counts(), (n - 1, 1, 0));
    }

    #[test]
    fn replicated_sweep_arity_is_checked() {
        let svc = demo_service();
        assert!(matches!(
            svc.observe_replicated(1, &LoadState::idle(2), None),
            Err(ServiceError::LoadArityMismatch { .. })
        ));
        assert_eq!(svc.epoch(), 0);
    }

    #[test]
    fn service_is_shareable_across_threads() {
        let svc = Arc::new(demo_service());
        let baseline = svc
            .compare("app", &[m(&[0, 1])])
            .expect("demo mapping is valid");
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let svc = svc.clone();
                std::thread::spawn(move || {
                    svc.compare("app", &[m(&[0, 1])])
                        .expect("demo mapping is valid")
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().expect("compare thread panicked"), baseline);
        }
    }
}
