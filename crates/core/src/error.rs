//! Service-level errors.

use std::fmt;

/// Errors raised by [`crate::CbesService`] request handling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// No profile registered under the given application name.
    UnknownApp(String),
    /// A mapping's arity does not match the application's process count.
    ArityMismatch {
        /// Processes in the registered profile.
        expected: usize,
        /// Entries in the offending mapping.
        got: usize,
    },
    /// A comparison request contained no mappings.
    EmptyRequest,
    /// A mapping referenced a node outside the cluster.
    BadNode(u32),
    /// A mapping placed more ranks on a node than it has CPUs.
    Oversubscribed {
        /// The oversubscribed node.
        node: u32,
        /// Ranks the mapping placed there.
        ranks: usize,
        /// CPUs the node actually has.
        cpus: u32,
    },
    /// A mapping assigned a process to a node currently classified `Down`
    /// (unmappable under the health policy).
    NodeDown(u32),
    /// A load observation covered a different number of nodes than the
    /// cluster has.
    LoadArityMismatch {
        /// Nodes in the cluster.
        expected: usize,
        /// Nodes in the offending measurement sweep.
        got: usize,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownApp(name) => write!(f, "no profile registered for `{name}`"),
            ServiceError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "mapping has {got} entries but profile has {expected} processes"
                )
            }
            ServiceError::EmptyRequest => write!(f, "mapping comparison request is empty"),
            ServiceError::BadNode(n) => write!(f, "mapping references unknown node n{n}"),
            ServiceError::Oversubscribed { node, ranks, cpus } => {
                write!(
                    f,
                    "mapping places {ranks} ranks on node n{node} which has {cpus} CPUs"
                )
            }
            ServiceError::NodeDown(n) => {
                write!(f, "mapping assigns a process to down node n{n}")
            }
            ServiceError::LoadArityMismatch { expected, got } => {
                write!(
                    f,
                    "load observation covers {got} nodes but the cluster has {expected}"
                )
            }
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        assert!(ServiceError::UnknownApp("lu".into())
            .to_string()
            .contains("`lu`"));
        assert!(ServiceError::ArityMismatch {
            expected: 8,
            got: 4
        }
        .to_string()
        .contains("8 processes"));
    }
}
