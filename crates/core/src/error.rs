//! Service-level errors.

use std::fmt;

/// Errors raised by [`crate::CbesService`] request handling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// No profile registered under the given application name.
    UnknownApp(String),
    /// A mapping's arity does not match the application's process count.
    ArityMismatch {
        /// Processes in the registered profile.
        expected: usize,
        /// Entries in the offending mapping.
        got: usize,
    },
    /// A comparison request contained no mappings.
    EmptyRequest,
    /// A mapping referenced a node outside the cluster.
    BadNode(u32),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownApp(name) => write!(f, "no profile registered for `{name}`"),
            ServiceError::ArityMismatch { expected, got } => {
                write!(f, "mapping has {got} entries but profile has {expected} processes")
            }
            ServiceError::EmptyRequest => write!(f, "mapping comparison request is empty"),
            ServiceError::BadNode(n) => write!(f, "mapping references unknown node n{n}"),
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        assert!(ServiceError::UnknownApp("lu".into())
            .to_string()
            .contains("`lu`"));
        assert!(ServiceError::ArityMismatch {
            expected: 8,
            got: 4
        }
        .to_string()
        .contains("8 processes"));
    }
}
