//! Application-to-node mappings (paper eq. 1–3).

use cbes_cluster::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A mapping `M`: process (rank) `i` runs on node `assign[i]`.
///
/// The paper's experiments use injective mappings (one process per node),
/// but multiple ranks may legally share a node — the simulator time-shares
/// CPUs and the evaluator accounts for it via the CPU-availability term.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mapping {
    assign: Vec<NodeId>,
}

impl Mapping {
    /// A mapping assigning rank `i` to `assign[i]`.
    pub fn new(assign: Vec<NodeId>) -> Self {
        Mapping { assign }
    }

    /// Number of processes (`n_M`).
    pub fn len(&self) -> usize {
        self.assign.len()
    }

    /// True for the empty mapping.
    pub fn is_empty(&self) -> bool {
        self.assign.is_empty()
    }

    /// Node assigned to `rank`.
    #[inline]
    pub fn node(&self, rank: usize) -> NodeId {
        self.assign[rank]
    }

    /// The assignment as a slice, indexed by rank.
    pub fn as_slice(&self) -> &[NodeId] {
        &self.assign
    }

    /// Iterator over `(rank, node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, NodeId)> + '_ {
        self.assign.iter().copied().enumerate()
    }

    /// True when no two ranks share a node.
    pub fn is_injective(&self) -> bool {
        let mut seen: Vec<NodeId> = self.assign.clone();
        seen.sort_unstable();
        seen.windows(2).all(|w| w[0] != w[1])
    }

    /// Ranks whose node differs between `self` and `other` (the processes a
    /// remapping would migrate). Panics if lengths differ.
    pub fn moved_ranks(&self, other: &Mapping) -> Vec<usize> {
        assert_eq!(self.len(), other.len(), "mappings must have equal arity");
        self.assign
            .iter()
            .zip(&other.assign)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect()
    }

    /// Replace the node of one rank (used by scheduler move operators).
    pub fn set(&mut self, rank: usize, node: NodeId) {
        self.assign[rank] = node;
    }

    /// Swap the nodes of two ranks.
    pub fn swap(&mut self, a: usize, b: usize) {
        self.assign.swap(a, b);
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, n) in self.assign.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<NodeId>> for Mapping {
    fn from(v: Vec<NodeId>) -> Self {
        Mapping::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(ids: &[u32]) -> Mapping {
        Mapping::new(ids.iter().map(|&i| NodeId(i)).collect())
    }

    #[test]
    fn injectivity_detection() {
        assert!(m(&[0, 1, 2]).is_injective());
        assert!(!m(&[0, 1, 0]).is_injective());
        assert!(m(&[]).is_injective());
    }

    #[test]
    fn moved_ranks_lists_differences() {
        let a = m(&[0, 1, 2, 3]);
        let b = m(&[0, 5, 2, 7]);
        assert_eq!(a.moved_ranks(&b), vec![1, 3]);
        assert!(a.moved_ranks(&a).is_empty());
    }

    #[test]
    #[should_panic(expected = "equal arity")]
    fn moved_ranks_requires_equal_arity() {
        let _ = m(&[0, 1]).moved_ranks(&m(&[0]));
    }

    #[test]
    fn mutation_operators() {
        let mut x = m(&[0, 1, 2]);
        x.swap(0, 2);
        assert_eq!(x.as_slice(), &[NodeId(2), NodeId(1), NodeId(0)]);
        x.set(1, NodeId(9));
        assert_eq!(x.node(1), NodeId(9));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(m(&[0, 3]).to_string(), "[n0 n3]");
    }
}
