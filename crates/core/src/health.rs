//! Per-node health tracking driven by observation staleness.
//!
//! The paper's monitoring subsystem assumes every node keeps reporting
//! CPU/NIC availability. On a real cluster nodes crash and monitor streams
//! go stale, so the service tracks a small state machine per node:
//!
//! ```text
//!            age > suspect_after          age > down_after
//!  Healthy ───────────────────▶ Suspect ───────────────────▶ Down
//!     ▲                            │                           │
//!     └────────────────────────────┴───────────────────────────┘
//!                       fresh observation arrives
//! ```
//!
//! "Age" is measured in monitor sweeps (epochs), not wall-clock time, so
//! the classification is deterministic and testable: a node's age is the
//! number of sweeps since it last reported. Evaluation treats `Down` nodes
//! as unmappable (infinite cost) and inflates the `ACPU`-derived cost of
//! `Suspect` nodes by a configurable penalty, so schedulers drift work away
//! from silent nodes *before* they are declared dead.

use cbes_cluster::NodeId;

/// Health classification of a single node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum NodeHealth {
    /// Reporting within the suspect deadline; fully usable.
    Healthy,
    /// Stale beyond the suspect deadline; usable but cost-inflated.
    Suspect,
    /// Stale beyond the down deadline; unmappable.
    Down,
}

impl NodeHealth {
    /// Short lower-case label (used in stats tables and metrics).
    pub fn label(self) -> &'static str {
        match self {
            NodeHealth::Healthy => "healthy",
            NodeHealth::Suspect => "suspect",
            NodeHealth::Down => "down",
        }
    }
}

/// Staleness deadlines and degradation penalties, in units of monitor
/// sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthPolicy {
    /// A node older than this many sweeps becomes `Suspect`.
    pub suspect_after: u64,
    /// A node older than this many sweeps becomes `Down`.
    pub down_after: u64,
    /// Multiplier (> 1) applied to `Suspect` nodes' compute cost: the
    /// effective `ACPU` is divided by this factor.
    pub suspect_cost_factor: f64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            suspect_after: 3,
            down_after: 8,
            suspect_cost_factor: 2.0,
        }
    }
}

impl HealthPolicy {
    /// Classify a node whose last report is `age` sweeps old.
    pub fn classify(&self, age: u64) -> NodeHealth {
        if age > self.down_after {
            NodeHealth::Down
        } else if age > self.suspect_after {
            NodeHealth::Suspect
        } else {
            NodeHealth::Healthy
        }
    }

    /// Classify every node given per-node ages.
    pub fn view(&self, ages: &[u64]) -> HealthView {
        HealthView {
            states: ages.iter().map(|&a| self.classify(a)).collect(),
            suspect_cost_factor: self.suspect_cost_factor.max(1.0),
        }
    }
}

/// A point-in-time health classification of every node, carried by
/// [`crate::SystemSnapshot`] into evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthView {
    states: Vec<NodeHealth>,
    suspect_cost_factor: f64,
}

impl HealthView {
    /// A view where every one of `n` nodes is healthy (the pre-fault-model
    /// behaviour; also what `SystemSnapshot::no_load` uses).
    pub fn all_healthy(n: usize) -> Self {
        HealthView {
            states: vec![NodeHealth::Healthy; n],
            suspect_cost_factor: HealthPolicy::default().suspect_cost_factor,
        }
    }

    /// Build from explicit states and a suspect penalty.
    pub fn new(states: Vec<NodeHealth>, suspect_cost_factor: f64) -> Self {
        HealthView {
            states,
            suspect_cost_factor: suspect_cost_factor.max(1.0),
        }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when covering zero nodes.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Health of `node`. Nodes beyond the tracked range are assumed
    /// healthy (mirrors `LoadState`'s permissive indexing).
    #[inline]
    pub fn health(&self, node: NodeId) -> NodeHealth {
        self.states
            .get(node.index())
            .copied()
            .unwrap_or(NodeHealth::Healthy)
    }

    /// True unless `node` is `Down`.
    #[inline]
    pub fn is_usable(&self, node: NodeId) -> bool {
        self.health(node) != NodeHealth::Down
    }

    /// The factor `Suspect` nodes' effective `ACPU` is divided by.
    #[inline]
    pub fn suspect_cost_factor(&self) -> f64 {
        self.suspect_cost_factor
    }

    /// Count of nodes in each state: `(healthy, suspect, down)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0usize, 0usize, 0usize);
        for s in &self.states {
            match s {
                NodeHealth::Healthy => c.0 += 1,
                NodeHealth::Suspect => c.1 += 1,
                NodeHealth::Down => c.2 += 1,
            }
        }
        c
    }

    /// Nodes currently classified `Down`.
    pub fn down_nodes(&self) -> Vec<NodeId> {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == NodeHealth::Down)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }
}

/// Tracks per-node observation recency and reports health transitions.
///
/// Feed it one call per monitor sweep with the set of nodes that actually
/// reported; ask it for the current [`HealthView`] at snapshot time.
#[derive(Debug, Clone)]
pub struct HealthTracker {
    policy: HealthPolicy,
    /// Sweep index at which each node last reported.
    last_seen: Vec<u64>,
    /// Total sweeps recorded.
    sweeps: u64,
    /// Last classification per node, for transition detection.
    states: Vec<NodeHealth>,
    /// Cumulative count of state changes (any direction).
    transitions: u64,
}

impl HealthTracker {
    /// A tracker over `n` nodes. Before any sweep every node is healthy.
    pub fn new(n: usize, policy: HealthPolicy) -> Self {
        HealthTracker {
            policy,
            last_seen: vec![0; n],
            sweeps: 0,
            states: vec![NodeHealth::Healthy; n],
            transitions: 0,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> &HealthPolicy {
        &self.policy
    }

    /// Sweeps recorded so far.
    pub fn sweeps(&self) -> u64 {
        self.sweeps
    }

    /// Cumulative health-state transitions observed.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Record a sweep in which every node reported.
    pub fn record_full_sweep(&mut self) -> u64 {
        let n = self.last_seen.len();
        self.record_sweep_internal(|_| true, n)
    }

    /// Record a sweep in which only nodes with `reported[i] == true`
    /// delivered a measurement. Returns the number of transitions this
    /// sweep caused.
    pub fn record_sweep(&mut self, reported: &[bool]) -> u64 {
        assert_eq!(reported.len(), self.last_seen.len(), "node count mismatch");
        let n = self.last_seen.len();
        self.record_sweep_internal(|i| reported[i], n)
    }

    fn record_sweep_internal(&mut self, reported: impl Fn(usize) -> bool, n: usize) -> u64 {
        self.sweeps += 1;
        let mut changed = 0u64;
        for i in 0..n {
            if reported(i) {
                self.last_seen[i] = self.sweeps;
            }
            let next = self.policy.classify(self.sweeps - self.last_seen[i]);
            if next != self.states[i] {
                self.states[i] = next;
                changed += 1;
            }
        }
        self.transitions += changed;
        changed
    }

    /// Age (in sweeps) of `node`'s last report.
    pub fn age(&self, node: NodeId) -> u64 {
        self.sweeps - self.last_seen[node.index()]
    }

    /// Current classification of every node.
    pub fn view(&self) -> HealthView {
        HealthView {
            states: self.states.clone(),
            suspect_cost_factor: self.policy.suspect_cost_factor.max(1.0),
        }
    }

    /// Counts of nodes in each state: `(healthy, suspect, down)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        self.view().counts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_classifies_by_age() {
        let p = HealthPolicy::default();
        assert_eq!(p.classify(0), NodeHealth::Healthy);
        assert_eq!(p.classify(3), NodeHealth::Healthy);
        assert_eq!(p.classify(4), NodeHealth::Suspect);
        assert_eq!(p.classify(8), NodeHealth::Suspect);
        assert_eq!(p.classify(9), NodeHealth::Down);
    }

    #[test]
    fn tracker_walks_healthy_suspect_down_and_recovers() {
        let policy = HealthPolicy {
            suspect_after: 1,
            down_after: 3,
            suspect_cost_factor: 2.0,
        };
        let mut t = HealthTracker::new(2, policy);
        let both = [true, true];
        let only0 = [true, false];
        t.record_sweep(&both);
        assert_eq!(t.view().health(NodeId(1)), NodeHealth::Healthy);
        // Node 1 goes silent: age 1 (healthy), 2 (suspect), 3 (suspect), 4 (down).
        t.record_sweep(&only0);
        assert_eq!(t.view().health(NodeId(1)), NodeHealth::Healthy);
        t.record_sweep(&only0);
        assert_eq!(t.view().health(NodeId(1)), NodeHealth::Suspect);
        t.record_sweep(&only0);
        assert_eq!(t.view().health(NodeId(1)), NodeHealth::Suspect);
        t.record_sweep(&only0);
        assert_eq!(t.view().health(NodeId(1)), NodeHealth::Down);
        assert_eq!(t.counts(), (1, 0, 1));
        // One fresh report heals it completely.
        t.record_sweep(&both);
        assert_eq!(t.view().health(NodeId(1)), NodeHealth::Healthy);
        // Transitions: healthy→suspect, suspect→down, down→healthy.
        assert_eq!(t.transitions(), 3);
    }

    #[test]
    fn full_sweeps_keep_everyone_healthy() {
        let mut t = HealthTracker::new(4, HealthPolicy::default());
        for _ in 0..50 {
            t.record_full_sweep();
        }
        assert_eq!(t.counts(), (4, 0, 0));
        assert_eq!(t.transitions(), 0);
    }

    #[test]
    fn view_counts_and_down_nodes() {
        let v = HealthView::new(
            vec![NodeHealth::Healthy, NodeHealth::Down, NodeHealth::Suspect],
            2.0,
        );
        assert_eq!(v.counts(), (1, 1, 1));
        assert_eq!(v.down_nodes(), vec![NodeId(1)]);
        assert!(v.is_usable(NodeId(0)));
        assert!(!v.is_usable(NodeId(1)));
        // Out-of-range nodes read as healthy.
        assert_eq!(v.health(NodeId(9)), NodeHealth::Healthy);
    }

    #[test]
    #[should_panic(expected = "node count mismatch")]
    fn record_sweep_rejects_wrong_arity() {
        let mut t = HealthTracker::new(2, HealthPolicy::default());
        t.record_sweep(&[true]);
    }
}
