//! The `cbes` binary: thin wrapper over the library dispatcher.

#![forbid(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let argv = if args.is_empty() {
        vec!["help".to_string()]
    } else {
        args
    };
    match cbes_cli::run(argv) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    }
}
