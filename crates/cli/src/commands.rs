//! Subcommand implementations. Each returns the rendered output text.

use crate::args::{parse_load_list, parse_node_list, Parsed};
use crate::error::CliError;
use cbes_cluster::load::LoadState;
use cbes_cluster::{Cluster, NodeId};
use cbes_core::eval::Evaluator;
use cbes_core::mapping::Mapping;
use cbes_core::snapshot::SystemSnapshot;
use cbes_mpisim::{simulate as sim_run, SimConfig};
use cbes_netmodel::calibrate::Calibrator;
use cbes_sched::{
    GaConfig, GeneticScheduler, GreedyScheduler, NcsScheduler, RandomScheduler, SaConfig,
    SaScheduler, ScheduleRequest, Scheduler,
};
use cbes_trace::{extract_profile, AppProfile, TraceStats};
use cbes_workloads::suite::{self, SuiteParams};
use cbes_workloads::Workload;
use std::fmt::Write as _;

fn preset(name: &str) -> Result<Cluster, CliError> {
    match name {
        "centurion" => Ok(cbes_cluster::presets::centurion()),
        "orange-grove" | "orangegrove" | "grove" => Ok(cbes_cluster::presets::orange_grove()),
        "demo" => Ok(cbes_cluster::presets::two_switch_demo()),
        // Anything ending in .json is a user-defined ClusterSpec file.
        path if path.ends_with(".json") => {
            let text = std::fs::read_to_string(path)?;
            let spec = cbes_cluster::ClusterSpec::from_json(&text)?;
            spec.build()
                .map_err(|e| CliError::domain(format!("invalid cluster spec `{path}`: {e}")))
        }
        other => Err(CliError::usage(format!(
            "unknown preset `{other}` (want centurion | orange-grove | demo, \
             or a ClusterSpec .json file)"
        ))),
    }
}

/// `cbes export-cluster <preset> [--out FILE]` — dump a preset as an
/// editable ClusterSpec JSON (the starting point for custom clusters).
pub fn export_cluster(parsed: &Parsed) -> Result<String, CliError> {
    let c = preset(parsed.positional0()?)?;
    let json = cbes_cluster::ClusterSpec::from_cluster(&c).to_json();
    if let Some(path) = parsed.get("out") {
        std::fs::write(path, &json)?;
        Ok(format!("cluster spec written to {path}\n"))
    } else {
        Ok(json)
    }
}

fn workload_from(parsed: &Parsed) -> Result<Workload, CliError> {
    let name = parsed.require("workload")?;
    let class = match parsed.get("class") {
        None => cbes_workloads::npb::NpbClass::A,
        Some(c) => suite::parse_class(c)
            .ok_or_else(|| CliError::usage(format!("bad --class `{c}` (want S|A|B)")))?,
    };
    let params = SuiteParams {
        ranks: parsed.get_parsed("ranks", 8usize)?,
        class,
        size: parsed.get_parsed("size", 10_000u64)?,
    };
    suite::by_name(name, params).ok_or_else(|| {
        CliError::usage(format!(
            "unknown workload `{name}` (run `cbes workloads` for the list)"
        ))
    })
}

fn load_from(parsed: &Parsed, cluster: &Cluster) -> Result<LoadState, CliError> {
    let mut load = LoadState::idle(cluster.len());
    if let Some(spec) = parsed.get("load") {
        for (node, avail) in parse_load_list(spec)? {
            if node.index() >= cluster.len() {
                return Err(CliError::usage(format!("node {node} outside the cluster")));
            }
            load.set_cpu_avail(node, avail);
        }
    }
    Ok(load)
}

fn read_profile(path: &str) -> Result<AppProfile, CliError> {
    let text = std::fs::read_to_string(path)?;
    Ok(AppProfile::from_json(&text)?)
}

/// `cbes cluster <preset>`
pub fn cluster(parsed: &Parsed) -> Result<String, CliError> {
    let c = preset(parsed.positional0()?)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "cluster `{}`: {} nodes, {} switches, {} links",
        c.name(),
        c.len(),
        c.switches().len(),
        c.links().len()
    );
    for arch in cbes_cluster::Architecture::known() {
        let nodes = c.nodes_by_arch(arch);
        if nodes.is_empty() {
            continue;
        }
        let speed = c.node(nodes[0]).speed;
        let _ = writeln!(
            out,
            "  {:>18}: {:>3} nodes (relative speed {speed})",
            arch.to_string(),
            nodes.len()
        );
    }
    let _ = writeln!(
        out,
        "inter-node latency spread at 1 KiB: {:.1}%",
        c.latency_spread(1024) * 100.0
    );
    Ok(out)
}

/// `cbes topology <preset> [--out FILE]` — Graphviz DOT of the cluster.
pub fn topology(parsed: &Parsed) -> Result<String, CliError> {
    let c = preset(parsed.positional0()?)?;
    let dot = c.to_dot();
    if let Some(path) = parsed.get("out") {
        std::fs::write(path, &dot)?;
        Ok(format!("topology written to {path}\n"))
    } else {
        Ok(dot)
    }
}

/// `cbes workloads`
pub fn workloads(_parsed: &Parsed) -> Result<String, CliError> {
    let mut out = String::from("available workload generators:\n");
    for name in suite::names() {
        let w = suite::by_name(
            name,
            SuiteParams {
                ranks: 4,
                class: cbes_workloads::npb::NpbClass::S,
                size: 12,
            },
        )
        .expect("listed names build");
        let _ = writeln!(out, "  {name:<8} {}", w.description);
    }
    out.push_str("options: --ranks N, --class S|A|B (NPB), --size N (hpl, smg2000)\n");
    Ok(out)
}

/// `cbes calibrate <preset> [--seed N] [--out FILE]`
pub fn calibrate(parsed: &Parsed) -> Result<String, CliError> {
    let c = preset(parsed.positional0()?)?;
    let seed = parsed.get_parsed("seed", 42u64)?;
    let outcome = Calibrator::default().with_seed(seed).calibrate(&c);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "calibrated `{}`: {} measurements over {} clique rounds \
         (serial cost {:.1}s, parallel {:.1}s, speedup {:.1}x)",
        c.name(),
        outcome.measurements,
        outcome.rounds,
        outcome.serial_cost,
        outcome.parallel_cost,
        outcome.clique_speedup()
    );
    if let Some(path) = parsed.get("out") {
        let json = serde_json::to_string_pretty(&outcome.model)?;
        std::fs::write(path, json)?;
        let _ = writeln!(out, "model written to {path}");
    }
    Ok(out)
}

/// `cbes profile <preset> --workload W [...] [--out FILE]`
pub fn profile(parsed: &Parsed) -> Result<String, CliError> {
    let c = preset(parsed.positional0()?)?;
    let w = workload_from(parsed)?;
    let seed = parsed.get_parsed("seed", 42u64)?;
    let nodes: Vec<NodeId> = match parsed.get("nodes") {
        Some(spec) => parse_node_list(spec)?,
        None => (0..w.num_ranks() as u32).map(NodeId).collect(),
    };
    if nodes.len() != w.num_ranks() {
        return Err(CliError::usage(format!(
            "--nodes lists {} nodes but the workload has {} ranks",
            nodes.len(),
            w.num_ranks()
        )));
    }
    let calib = Calibrator::default().with_seed(seed).calibrate(&c);
    let run = sim_run(
        &c,
        &w.program,
        &nodes,
        &LoadState::idle(c.len()),
        &SimConfig::default().with_seed(seed),
    )
    .map_err(|e| CliError::domain(format!("profiling run failed: {e}")))?;
    let profile = extract_profile(&w.name, &run.trace, &c, &nodes, &calib.model);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "profiled `{}` on {} ranks: wall {:.3}s, {:.0}% compute / {:.0}% communication",
        profile.name,
        profile.num_procs(),
        run.wall_time,
        profile.compute_fraction() * 100.0,
        (1.0 - profile.compute_fraction()) * 100.0
    );
    if let Some(path) = parsed.get("out") {
        std::fs::write(path, profile.to_json())?;
        let _ = writeln!(out, "profile written to {path}");
    }
    Ok(out)
}

/// `cbes predict <preset> --profile F --mapping 0,1,..`
pub fn predict(parsed: &Parsed) -> Result<String, CliError> {
    let c = preset(parsed.positional0()?)?;
    let profile = read_profile(parsed.require("profile")?)?;
    let mapping = Mapping::new(parse_node_list(parsed.require("mapping")?)?);
    if mapping.len() != profile.num_procs() {
        return Err(CliError::usage(format!(
            "mapping lists {} nodes but the profile has {} processes",
            mapping.len(),
            profile.num_procs()
        )));
    }
    let seed = parsed.get_parsed("seed", 42u64)?;
    let calib = Calibrator::default().with_seed(seed).calibrate(&c);
    let mut snap = SystemSnapshot::no_load(&c, &calib.model);
    snap.set_load(load_from(parsed, &c)?);
    let pred = Evaluator::new(&profile, &snap).predict(&mapping);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "predicted execution time: {:.4} s (bottleneck rank {})",
        pred.time, pred.bottleneck
    );
    for (rank, cost) in pred.per_proc.iter().enumerate() {
        let _ = writeln!(
            out,
            "  rank {rank}: R = {:.4}s, C = {:.4}s on {}",
            cost.r,
            cost.c,
            mapping.node(rank)
        );
    }
    Ok(out)
}

/// `cbes schedule <preset> --profile F [--scheduler cs|ncs|rs|greedy|ga]`
pub fn schedule(parsed: &Parsed) -> Result<String, CliError> {
    let c = preset(parsed.positional0()?)?;
    let profile = read_profile(parsed.require("profile")?)?;
    let seed = parsed.get_parsed("seed", 42u64)?;
    let pool: Vec<NodeId> = match parsed.get("pool") {
        Some(spec) => parse_node_list(spec)?,
        None => c.node_ids().collect(),
    };
    let calib = Calibrator::default().with_seed(seed).calibrate(&c);
    let mut snap = SystemSnapshot::no_load(&c, &calib.model);
    snap.set_load(load_from(parsed, &c)?);
    let req = ScheduleRequest::new(&profile, &snap, &pool);
    let kind = parsed.get("scheduler").unwrap_or("cs");
    let mut scheduler: Box<dyn Scheduler> = match kind {
        "cs" => Box::new(SaScheduler::new(SaConfig::thorough(seed))),
        "ncs" => Box::new(NcsScheduler::new(SaConfig::thorough(seed))),
        "rs" => Box::new(RandomScheduler::new(seed)),
        "greedy" => Box::new(GreedyScheduler::new()),
        "ga" => Box::new(GeneticScheduler::new(GaConfig::fast(seed))),
        other => {
            return Err(CliError::usage(format!(
                "unknown scheduler `{other}` (want cs|ncs|rs|greedy|ga)"
            )))
        }
    };
    let result = scheduler
        .schedule(&req)
        .map_err(|e| CliError::domain(format!("scheduling failed: {e}")))?;
    Ok(format!(
        "{} selected mapping {}\npredicted execution time: {:.4} s\n\
         {} evaluations in {:?}\n",
        scheduler.name(),
        result.mapping,
        result.predicted_time,
        result.evaluations,
        result.elapsed
    ))
}

/// `cbes analyze` — two forms sharing one command word, told apart by
/// the positional argument:
///
/// * `cbes analyze <preset> --workload W --mapping 0,1,..` traces one
///   run and prints the post-mortem statistics (utilisation, hot
///   edges, matrix) — the original form.
/// * `cbes analyze [--root DIR] [--rules a,b,..] [--json FILE]
///   [--diff-baseline FILE]` runs the static-analysis rule engine over
///   the workspace source; exits 0 when clean, 1 on unwaived findings
///   (those not in the baseline, when one is given), 2 on usage errors.
pub fn analyze(parsed: &Parsed) -> Result<String, CliError> {
    if parsed.positional.is_empty() {
        return analyze_static(parsed);
    }
    let c = preset(parsed.positional0()?)?;
    let mapping = parse_node_list(parsed.require("mapping")?)?;
    let mut p2 = parsed.clone();
    p2.flags
        .entry("ranks".into())
        .or_insert_with(|| mapping.len().to_string());
    let w = workload_from(&p2)?;
    let seed = parsed.get_parsed("seed", 42u64)?;
    let load = load_from(parsed, &c)?;
    let r = sim_run(
        &c,
        &w.program,
        &mapping,
        &load,
        &SimConfig::default().with_seed(seed),
    )
    .map_err(|e| CliError::domain(format!("traced run failed: {e}")))?;
    let stats = TraceStats::from_trace(&r.trace);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "`{}` wall time {:.4}s — {} messages, {} payload bytes, compute \
         imbalance {:.2}x",
        w.name,
        stats.wall_time,
        stats.total_messages(),
        stats.total_bytes(),
        stats.compute_imbalance()
    );
    let _ = writeln!(out, "\nper-rank utilisation (fractions of wall time):");
    let _ = writeln!(out, "  rank | compute | overhead | blocked | tail idle");
    for u in &stats.utilisation {
        let _ = writeln!(
            out,
            "  {:>4} | {:>7.3} | {:>8.3} | {:>7.3} | {:>9.3}",
            u.rank, u.compute, u.overhead, u.blocked, u.tail_idle
        );
    }
    let _ = writeln!(out, "\nhottest communication edges:");
    for (s_, d, b) in stats.hottest_pairs(5) {
        let _ = writeln!(out, "  r{s_} -> r{d}: {b} bytes");
    }
    if stats.num_ranks() <= 12 {
        let _ = writeln!(out, "\n{}", stats.render_matrix());
    }
    Ok(out)
}

/// The static-analysis half of `cbes analyze`: run the `cbes-analyze`
/// rule engine in-process and map its outcome onto CLI exit codes.
/// `--diff-baseline` takes a previous run's `--json` report and fails
/// only on unwaived findings not present in it, keyed by
/// `(rule, file, message)` — line numbers shift under unrelated edits,
/// so they are deliberately not part of the identity.
fn analyze_static(parsed: &Parsed) -> Result<String, CliError> {
    let root = parsed.get("root").unwrap_or(".");
    let rules = match parsed.get("rules") {
        None => cbes_analyze::rules::ALL_RULES.to_vec(),
        Some(list) => list
            .split(',')
            .map(|name| {
                cbes_analyze::rules::ALL_RULES
                    .iter()
                    .copied()
                    .find(|r| *r == name.trim())
                    .ok_or_else(|| {
                        CliError::usage(format!(
                            "unknown rule `{}` (want one of {})",
                            name.trim(),
                            cbes_analyze::rules::ALL_RULES.join(", ")
                        ))
                    })
            })
            .collect::<Result<Vec<_>, _>>()?,
    };
    let opts = cbes_analyze::Options {
        root: root.into(),
        rules,
    };
    let report = cbes_analyze::analyze(&opts).map_err(CliError::domain)?;
    if let Some(path) = parsed.get("json") {
        std::fs::write(path, report.render_json())?;
    }

    let baseline = match parsed.get("diff-baseline") {
        None => Vec::new(),
        Some(path) => baseline_keys(path)?,
    };
    let fresh: Vec<_> = report
        .unwaived()
        .filter(|f| {
            !baseline.iter().any(|(rule, file, message)| {
                f.rule == rule && &f.file == file && &f.message == message
            })
        })
        .collect();

    let mut out = report.render_text();
    // Machine-greppable counters, named through the canonical
    // constants so dashboards and this tool cannot drift apart.
    let _ = writeln!(
        out,
        "{} {}",
        cbes_obs::names::ANALYZE_FINDINGS,
        report.unwaived().count()
    );
    let _ = writeln!(
        out,
        "{} {}",
        cbes_obs::names::ANALYZE_WAIVED,
        report.waived().count()
    );
    for (rule, (unwaived, _)) in report.counts_by_rule() {
        if let Some(idx) = cbes_analyze::rules::ALL_RULES
            .iter()
            .position(|r| *r == rule)
        {
            let _ = writeln!(
                out,
                "{} {unwaived}",
                cbes_obs::names::ANALYZE_RULE_COUNTERS[idx]
            );
        }
    }
    if parsed.get("diff-baseline").is_some() {
        let suppressed = report.unwaived().count() - fresh.len();
        let _ = writeln!(
            out,
            "baseline: {suppressed} known finding(s) suppressed, {} fresh",
            fresh.len()
        );
    }
    if fresh.is_empty() {
        Ok(out)
    } else {
        Err(CliError::Analysis {
            report: out,
            fresh: fresh.len(),
        })
    }
}

/// Parse a previous `--json` report into baseline identity keys.
fn baseline_keys(path: &str) -> Result<Vec<(String, String, String)>, CliError> {
    let text = std::fs::read_to_string(path)?;
    let doc: serde_json::Value = serde_json::from_str(&text)?;
    let findings = doc
        .get("findings")
        .and_then(|f| f.as_array())
        .ok_or_else(|| {
            CliError::usage(format!(
                "baseline `{path}` has no `findings` array (want a cbes analyze --json report)"
            ))
        })?;
    let field = |entry: &serde_json::Value, key: &str| {
        entry
            .get(key)
            .and_then(|v| v.as_str())
            .unwrap_or_default()
            .to_string()
    };
    Ok(findings
        .iter()
        .filter(|entry| entry.get("waived").and_then(|w| w.as_bool()) != Some(true))
        .map(|entry| {
            (
                field(entry, "rule"),
                field(entry, "file"),
                field(entry, "message"),
            )
        })
        .collect())
}

/// `cbes simulate <preset> --workload W --mapping 0,1,..`
pub fn simulate(parsed: &Parsed) -> Result<String, CliError> {
    let c = preset(parsed.positional0()?)?;
    let mapping = parse_node_list(parsed.require("mapping")?)?;
    let mut p2 = parsed.clone();
    p2.flags
        .entry("ranks".into())
        .or_insert_with(|| mapping.len().to_string());
    let w = workload_from(&p2)?;
    let seed = parsed.get_parsed("seed", 42u64)?;
    let load = load_from(parsed, &c)?;
    let r = sim_run(
        &c,
        &w.program,
        &mapping,
        &load,
        &SimConfig::default().with_seed(seed),
    )
    .map_err(|e| CliError::domain(format!("simulation failed: {e}")))?;
    let mut out = String::new();
    let _ = writeln!(out, "`{}` wall time: {:.4} s", w.name, r.wall_time);
    for (rank, s) in r.stats.iter().enumerate() {
        let _ = writeln!(
            out,
            "  rank {rank} on {}: compute {:.3}s, overhead {:.3}s, blocked {:.3}s",
            mapping[rank], s.x, s.o, s.b
        );
    }
    Ok(out)
}

/// `cbes serve <preset>` — run the CBES daemon until a `Shutdown`
/// request arrives, then drain and report counters.
pub fn serve(parsed: &Parsed) -> Result<String, CliError> {
    let c = preset(parsed.positional0()?)?;
    let seed = parsed.get_parsed("seed", 42u64)?;
    let config = cbes_server::ServerConfig {
        addr: parsed.get("addr").unwrap_or("127.0.0.1:9077").to_string(),
        workers: parsed.get_parsed("workers", 4usize)?,
        queue_capacity: parsed.get_parsed("queue", 1024usize)?,
        request_timeout: std::time::Duration::from_millis(
            parsed.get_parsed("timeout-ms", 10_000u64)?,
        ),
        max_line_bytes: parsed.get_parsed("max-line-bytes", 64 * 1024usize)?,
        max_consecutive_errors: parsed.get_parsed("max-bad-frames", 8u32)?,
        shed_retry_after: std::time::Duration::from_millis(
            parsed.get_parsed("retry-after-ms", 25u64)?,
        ),
        max_rps: parsed.get_parsed("max-rps", 0.0f64)?,
        state_dir: parsed.get("state-dir").map(std::path::PathBuf::from),
    };
    let health = cbes_core::HealthPolicy {
        suspect_after: parsed.get_parsed("suspect-after", 3u64)?,
        down_after: parsed.get_parsed("down-after", 8u64)?,
        ..cbes_core::HealthPolicy::default()
    };
    let forecast = match parsed.get("forecast").unwrap_or("adaptive") {
        "last" => cbes_core::monitor::ForecastKind::LastValue,
        "mean" => cbes_core::monitor::ForecastKind::Mean(8),
        "median" => cbes_core::monitor::ForecastKind::Median(8),
        "adaptive" => cbes_core::monitor::ForecastKind::Adaptive(8),
        other => {
            return Err(CliError::usage(format!(
                "bad --forecast `{other}` (want last | mean | median | adaptive)"
            )))
        }
    };

    // Off-line calibration at start-up, as the paper's service does at
    // installation time.
    let name = c.name().to_string();
    let nodes = c.len();
    let outcome = Calibrator::default().with_seed(seed).calibrate(&c);
    let service = std::sync::Arc::new(
        cbes_core::CbesService::new(
            std::sync::Arc::new(c),
            std::sync::Arc::new(outcome.model),
            forecast,
        )
        .with_health_policy(health),
    );
    if let Some(dir) = parsed.get("profiles") {
        let loaded = cbes_core::registry::ProfileRegistry::load_dir(std::path::Path::new(dir))?;
        for app in loaded.names() {
            if let Some(p) = loaded.get(&app) {
                service.registry().insert(p);
            }
        }
    }

    let workers = config.workers;
    let handle = cbes_server::Server::start(service, config)?;
    let addr = handle.addr();
    // The daemon blocks in join() until a Shutdown request, so report
    // liveness on stderr where it is visible immediately.
    eprintln!("cbes-server: serving `{name}` ({nodes} nodes) on {addr} with {workers} workers");
    if let Some(path) = parsed.get("addr-file") {
        std::fs::write(path, addr.to_string())?;
    }
    let (served, errors) = handle.join();
    Ok(format!(
        "cbes-server on {addr} drained: {served} requests served, {errors} errors\n"
    ))
}

/// The `--timeout SECONDS` I/O deadline for client commands; a dead or
/// wedged daemon then surfaces as an error instead of a hang.
fn client_timeout(parsed: &Parsed) -> Result<std::time::Duration, CliError> {
    let secs = parsed.get_parsed("timeout", 10.0f64)?;
    if !(secs > 0.0 && secs.is_finite()) {
        return Err(CliError::usage(format!(
            "--timeout must be a positive number of seconds, got `{secs}`"
        )));
    }
    Ok(std::time::Duration::from_secs_f64(secs))
}

/// Connect to a daemon with the `--timeout` deadline applied to the
/// connection attempt and to every read/write on the socket.
fn connect(parsed: &Parsed, addr: &str) -> Result<cbes_server::Client, CliError> {
    cbes_server::Client::connect_timeout(addr, client_timeout(parsed)?)
        .map_err(|e| CliError::Transport(format!("cannot reach daemon at {addr}: {e}")))
}

/// Classify a client failure for exit-code purposes: transport problems,
/// overload-shed replies, and other server-reported errors are distinct.
fn client_err(e: cbes_server::client::ClientError) -> CliError {
    use cbes_server::client::ClientError;
    match e {
        ClientError::Io(e) => CliError::Transport(e.to_string()),
        ClientError::Protocol(m) => CliError::Transport(m),
        ClientError::Server {
            kind,
            message,
            retry_after_ms,
        } if kind == cbes_server::protocol::error_kind::OVERLOADED => CliError::Shed {
            message,
            retry_after_ms,
        },
        // A draining daemon is indistinguishable from a dead one for
        // scripting purposes: the service is going away, not rejecting
        // this particular request. Exit 3 (transport), not 4.
        ClientError::Server { kind, message, .. }
            if kind == cbes_server::protocol::error_kind::SHUTTING_DOWN =>
        {
            CliError::Transport(format!("daemon is draining: {message}"))
        }
        ClientError::Server { kind, message, .. } => CliError::Server { kind, message },
    }
}

/// Render label/value rows right-aligned on the label column.
fn aligned_table(rows: &[(String, String)]) -> String {
    let width = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in rows {
        let _ = writeln!(out, "{label:>width$}  {value}");
    }
    out
}

/// Pretty-print a `stats` reply, including the per-action service counts.
fn stats_table(s: &cbes_server::protocol::StatsReport) -> String {
    let mut rows: Vec<(String, String)> = vec![
        ("served".into(), s.served.to_string()),
        ("errors".into(), s.errors.to_string()),
        ("overloaded".into(), s.overloaded.to_string()),
        ("timeouts".into(), s.timeouts.to_string()),
        ("connections".into(), s.connections.to_string()),
        ("epoch".into(), s.epoch.to_string()),
        ("profiles".into(), s.profiles.to_string()),
        ("observations".into(), s.observations.to_string()),
        ("workers".into(), s.workers.to_string()),
        ("queue depth".into(), s.queue_depth.to_string()),
        (
            "node health".into(),
            format!(
                "{} healthy / {} suspect / {} down",
                s.healthy, s.suspect, s.down
            ),
        ),
        (
            "health transitions".into(),
            s.health_transitions.to_string(),
        ),
        (
            "dropped connections".into(),
            s.dropped_connections.to_string(),
        ),
        ("uptime".into(), format!("{:.1} s", s.uptime_s)),
    ];
    for (action, count) in &s.per_action {
        rows.push((format!("served: {action}"), count.to_string()));
    }
    aligned_table(&rows)
}

/// Summarise a metrics snapshot: counters, gauges, and latency
/// histograms with their key percentiles (all durations microseconds).
fn metrics_table(m: &cbes_obs::MetricsSnapshot) -> String {
    let mut out = String::new();
    if !m.counters.is_empty() {
        let _ = writeln!(out, "counters:");
        let rows: Vec<(String, String)> = m
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v.to_string()))
            .collect();
        out.push_str(&aligned_table(&rows));
    }
    if !m.gauges.is_empty() {
        let _ = writeln!(out, "gauges:");
        let rows: Vec<(String, String)> = m
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), format!("{v:.3}")))
            .collect();
        out.push_str(&aligned_table(&rows));
    }
    if !m.histograms.is_empty() {
        let _ = writeln!(out, "histograms (us):");
        let rows: Vec<(String, String)> = m
            .histograms
            .iter()
            .map(|(k, h)| {
                let v = if h.is_empty() {
                    "empty".to_string()
                } else {
                    format!(
                        "count {}  mean {:.0}  p50 {}  p90 {}  p99 {}  max {}",
                        h.count,
                        h.mean(),
                        h.p50(),
                        h.p90(),
                        h.p99(),
                        h.max
                    )
                };
                (k.clone(), v)
            })
            .collect();
        out.push_str(&aligned_table(&rows));
    }
    let _ = writeln!(
        out,
        "spans: {} buffered, {} dropped",
        m.spans_buffered, m.spans_dropped
    );
    out
}

/// `cbes metrics <addr>.. [--addr HOST:PORT]..` — fetch observability
/// snapshots from one or more daemons (every positional address plus
/// every repeated `--addr`), merge them into a single tier-wide report
/// (counters and histograms add, gauges last-wins), and render it.
pub fn metrics(parsed: &Parsed) -> Result<String, CliError> {
    let mut addrs: Vec<&str> = parsed.positional.iter().map(String::as_str).collect();
    addrs.extend(parsed.get_all("addr").iter().map(String::as_str));
    if addrs.is_empty() {
        return Err(CliError::usage(
            "`metrics` needs at least one daemon address (positional or --addr)",
        ));
    }
    let format = parsed.get("format").unwrap_or("summary");
    if !matches!(format, "summary" | "json") {
        return Err(CliError::usage(format!(
            "bad --format `{format}` (want summary | json)"
        )));
    }
    let mut merged: Option<cbes_obs::MetricsSnapshot> = None;
    for addr in &addrs {
        let mut client = connect(parsed, addr)?;
        let snap = client.metrics().map_err(client_err)?;
        match merged.as_mut() {
            Some(m) => m.merge(&snap),
            None => merged = Some(snap),
        }
    }
    let snap = merged.ok_or_else(|| CliError::usage("`metrics` needs a daemon address"))?;
    if format == "json" {
        Ok(snap.to_json() + "\n")
    } else if addrs.len() == 1 {
        Ok(metrics_table(&snap))
    } else {
        Ok(format!(
            "merged {} instances:\n{}",
            addrs.len(),
            metrics_table(&snap)
        ))
    }
}

/// Per-endpoint cumulative `(served, shed)` totals from the previous
/// `cbes top` frame, keyed by address — the baseline for the per-frame
/// rate deltas.
type TopTotals = std::collections::BTreeMap<String, (u64, u64)>;

/// Render one `cbes top` frame from per-endpoint metrics snapshots:
/// request and shed deltas against the previous frame's cumulative
/// totals, rolling service-time quantiles from the 10/60-second
/// histogram windows. An endpoint that did not answer this frame
/// (`None`) renders as a `down` row rather than aborting the session,
/// and its delta baseline is dropped so the first frame after it comes
/// back starts fresh. Deltas clamp at zero via `saturating_sub`: a
/// restarted instance resets its counters, and a session that spans the
/// restart must show a quiet endpoint, not an underflowed rate.
fn top_frame(rows: &[(String, Option<cbes_obs::MetricsSnapshot>)], prev: &mut TopTotals) -> String {
    use cbes_obs::names;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<21} {:>7} {:>7} {:>10} {:>10} {:>10} {:>11} {:>7}",
        "endpoint", "req", "shed", "p50-10s us", "p99-10s us", "p99-60s us", "spans", "flight"
    );
    for (addr, snap) in rows {
        let Some(m) = snap else {
            prev.remove(addr);
            let _ = writeln!(
                out,
                "{addr:<21} {:>7} {:>7} {:>10} {:>10} {:>10} {:>11} {:>7}  (down)",
                "-", "-", "-", "-", "-", "-", "-"
            );
            continue;
        };
        let c = |key: String| m.counters.get(&key).copied().unwrap_or(0);
        // A daemon serves requests; a router routes them. Summing the
        // two counters gives one rate column for a mixed endpoint list.
        let served_total =
            c(names::SERVER_SERVED.to_string()) + c(names::ROUTER_ROUTED.to_string());
        let shed_total =
            c(names::SERVER_OVERLOADED.to_string()) + c(names::SERVER_RATE_LIMITED.to_string());
        let (served_prev, shed_prev) = prev
            .insert(addr.clone(), (served_total, shed_total))
            .unwrap_or((0, 0));
        let served = served_total.saturating_sub(served_prev);
        let shed = shed_total.saturating_sub(shed_prev);
        let q = |w: u64, pick: fn(&cbes_obs::HistogramSnapshot) -> u64| {
            m.histograms
                .get(&format!("{}#{w}s", names::SERVER_SERVICE_TIME_US))
                .map(|h| pick(h).to_string())
                .unwrap_or_else(|| "-".to_string())
        };
        let _ = writeln!(
            out,
            "{addr:<21} {served:>7} {shed:>7} {:>10} {:>10} {:>10} {:>11} {:>7}",
            q(10, cbes_obs::HistogramSnapshot::p50),
            q(10, cbes_obs::HistogramSnapshot::p99),
            q(60, cbes_obs::HistogramSnapshot::p99),
            format!("{}/{}", m.spans_buffered, m.spans_dropped),
            c(names::FLIGHT_EVENTS.to_string()),
        );
    }
    out
}

/// `cbes top <addr>.. [--addr A].. [--iterations N] [--interval-ms N]`
/// — a live tier view: every interval, poll each endpoint's metrics
/// snapshot and render per-second request/shed rates and rolling
/// latency quantiles from the sliding-window snapshot keys.
/// Intermediate frames stream to stdout; the final frame is the
/// returned output.
pub fn top(parsed: &Parsed) -> Result<String, CliError> {
    let mut addrs: Vec<&str> = parsed.positional.iter().map(String::as_str).collect();
    addrs.extend(parsed.get_all("addr").iter().map(String::as_str));
    if addrs.is_empty() {
        return Err(CliError::usage(
            "`top` needs at least one daemon address (positional or --addr)",
        ));
    }
    let iterations = parsed.get_parsed("iterations", 5usize)?;
    if iterations == 0 {
        return Err(CliError::usage("--iterations must be at least 1"));
    }
    let interval = std::time::Duration::from_millis(parsed.get_parsed("interval-ms", 1000u64)?);
    let mut last = String::new();
    let mut totals = TopTotals::new();
    for frame in 0..iterations {
        let mut rows = Vec::new();
        for addr in &addrs {
            // A dead endpoint is a row, not a session abort: restarts
            // mid-session are exactly when an operator watches `top`.
            let snap = connect(parsed, addr)
                .and_then(|mut c| c.metrics().map_err(client_err))
                .ok();
            rows.push((addr.to_string(), snap));
        }
        last = format!(
            "cbes top — frame {}/{iterations}, {} endpoint(s)\n{}",
            frame + 1,
            addrs.len(),
            top_frame(&rows, &mut totals)
        );
        if frame + 1 < iterations {
            println!("{last}");
            std::thread::sleep(interval);
        }
    }
    Ok(last)
}

/// `cbes request <addr> <action>` — issue one request to a running
/// daemon and print the reply.
pub fn request(parsed: &Parsed) -> Result<String, CliError> {
    let addr = parsed.positional0()?;
    let action = parsed
        .positional
        .get(1)
        .map(String::as_str)
        .ok_or_else(|| {
            CliError::usage(
                "`request` needs an action \
             (stats | metrics | shutdown | register | compare | best-of | batch \
             | schedule | observe | observe-partial | trace | dump-flight)",
            )
        })?;
    // `--trace-id N` roots this invocation in trace N: the guard makes
    // the trace context current, so the client stamps it onto the
    // outgoing envelope and every hop downstream joins the same trace.
    let trace_id = parsed.get_parsed("trace-id", 0u64)?;
    let _span = (trace_id != 0 && action != "trace").then(|| {
        cbes_obs::Registry::global().spans().span_rooted(
            cbes_obs::names::SPAN_CLI_REQUEST,
            trace_id,
            0,
        )
    });
    let mut client = connect(parsed, addr)?;
    let err = client_err;

    let mut out = String::new();
    match action {
        "stats" => {
            let s = client.stats().map_err(err)?;
            out.push_str(&stats_table(&s));
        }
        "metrics" => {
            let snap = client.metrics().map_err(err)?;
            out.push_str(&snap.to_json());
            out.push('\n');
        }
        "shutdown" => {
            client.shutdown().map_err(err)?;
            let _ = writeln!(out, "daemon at {addr} is draining");
        }
        "register" => {
            let profile = read_profile(parsed.require("profile")?)?;
            let name = profile.name.clone();
            let procs = profile.num_procs();
            client.register_profile(profile).map_err(err)?;
            let _ = writeln!(out, "registered `{name}` ({procs} processes)");
        }
        "compare" | "best-of" | "batch" => {
            let app = parsed.require("app")?;
            let mappings = parse_mapping_list(parsed.require("mappings")?)?;
            if action == "compare" || action == "batch" {
                let (epoch, preds) = if action == "batch" {
                    client.batch(app, &mappings).map_err(err)?
                } else {
                    client.compare(app, &mappings).map_err(err)?
                };
                let _ = writeln!(out, "epoch {epoch}:");
                for (m, p) in mappings.iter().zip(&preds) {
                    let _ = writeln!(out, "  {m}: {:.4} s (bottleneck r{})", p.time, p.bottleneck);
                }
            } else {
                let (epoch, index, p) = client.best_of(app, &mappings).map_err(err)?;
                let _ = writeln!(
                    out,
                    "epoch {epoch}: best is #{index} {}: {:.4} s",
                    mappings[index], p.time
                );
            }
        }
        "schedule" => {
            let app = parsed.require("app")?;
            let pool: Vec<u32> = parse_node_list(parsed.require("pool")?)?
                .into_iter()
                .map(|n| n.0)
                .collect();
            let iters = parsed.get_parsed("iters", 0u32)?;
            let seed = parsed.get_parsed("seed", 42u64)?;
            let (epoch, mapping, time) = client.schedule(app, &pool, iters, seed).map_err(err)?;
            let _ = writeln!(out, "epoch {epoch}: {mapping} predicted {time:.4} s");
        }
        "observe" | "observe-partial" => {
            let nodes = parsed.get_parsed("nodes", 0usize)?;
            if nodes == 0 {
                return Err(CliError::usage(format!(
                    "`{action}` requires --nodes (cluster size)"
                )));
            }
            let mut load = LoadState::idle(nodes);
            for (node, avail) in parse_load_list(parsed.require("load")?)? {
                if node.index() >= nodes {
                    return Err(CliError::usage(format!(
                        "load entry {node} is outside the {nodes}-node cluster"
                    )));
                }
                load.set_cpu_avail(node, avail);
            }
            let epoch = if action == "observe" {
                client.observe_load(&load).map_err(err)?
            } else {
                let silent: Vec<u32> = match parsed.get("silent") {
                    None => vec![],
                    Some(spec) => parse_node_list(spec)?.into_iter().map(|n| n.0).collect(),
                };
                client.observe_partial(&load, &silent).map_err(err)?
            };
            let _ = writeln!(out, "observed; epoch is now {epoch}");
        }
        "route" => {
            let cluster = parsed.get("cluster").unwrap_or("default");
            let app = parsed.require("app")?;
            let (hash, primary, replicas) = client.route(cluster, app).map_err(err)?;
            let _ = writeln!(
                out,
                "key ({cluster}, {app}) hashes to {hash:#018x}; primary is \
                 instance {} at {} ({})",
                primary.index, primary.addr, primary.health
            );
            for r in &replicas {
                let _ = writeln!(
                    out,
                    "  replica: instance {} at {} ({})",
                    r.index, r.addr, r.health
                );
            }
        }
        "replicate" => {
            let epoch = parsed.get_parsed("epoch", 0u64)?;
            let nodes = parsed.get_parsed("nodes", 0usize)?;
            if epoch == 0 || nodes == 0 {
                return Err(CliError::usage(
                    "`replicate` requires --epoch (≥ 1) and --nodes (cluster size)",
                ));
            }
            let mut load = LoadState::idle(nodes);
            for (node, avail) in parse_load_list(parsed.require("load")?)? {
                if node.index() >= nodes {
                    return Err(CliError::usage(format!(
                        "load entry {node} is outside the {nodes}-node cluster"
                    )));
                }
                load.set_cpu_avail(node, avail);
            }
            let silent: Vec<u32> = match parsed.get("silent") {
                None => vec![],
                Some(spec) => parse_node_list(spec)?.into_iter().map(|n| n.0).collect(),
            };
            let (now, applied) = client.replicate(epoch, &load, &silent).map_err(err)?;
            let verb = if applied { "adopted" } else { "already had" };
            let _ = writeln!(out, "instance {verb} epoch {epoch}; its epoch is now {now}");
        }
        "membership" => {
            let report = client.membership().map_err(err)?;
            out.push_str(&membership_table(&report));
        }
        "trace" => {
            if trace_id == 0 {
                return Err(CliError::usage(
                    "`trace` requires --trace-id N (the nonzero id the traced \
                     request was stamped with)",
                ));
            }
            let (tid, spans) = client.trace(trace_id).map_err(err)?;
            out.push_str(&trace_table(tid, &spans));
        }
        "dump-flight" => {
            let (path, events) = client.dump_flight().map_err(err)?;
            let _ = writeln!(out, "flight recorder dumped {events} event(s) to {path}");
        }
        "stage" => {
            let kind = parsed.require("kind")?;
            let payload = artifact_payload(parsed)?;
            let (version, state, _) = client.stage(kind, &payload).map_err(err)?;
            let _ = writeln!(out, "artifact v{version} {state} ({kind})");
        }
        "apply" => {
            let (version, state, epoch) = client.apply().map_err(err)?;
            let _ = writeln!(out, "artifact v{version} {state} (epoch {epoch})");
        }
        "accept" => {
            let (version, state, _) = client.accept().map_err(err)?;
            let _ = writeln!(out, "artifact v{version} {state}");
        }
        "rollback" => {
            let reason = parsed.get("reason").unwrap_or("operator rollback");
            let (version, state, epoch) = client.rollback(reason).map_err(err)?;
            let _ = writeln!(out, "artifact v{version} {state} (epoch {epoch})");
        }
        "artifact-status" => {
            let status = client.artifact_status().map_err(err)?;
            out.push_str(&artifact_status_table(&status));
        }
        other => {
            return Err(CliError::usage(format!(
                "unknown request action `{other}` \
                 (want stats | metrics | shutdown | register | compare | best-of \
                 | batch | schedule | observe | observe-partial | route \
                 | replicate | membership | trace | dump-flight | stage \
                 | apply | accept | rollback | artifact-status)"
            )))
        }
    }
    Ok(out)
}

/// The artifact payload for `stage`: inline `--payload JSON` or
/// `--payload-file FILE`.
fn artifact_payload(parsed: &Parsed) -> Result<String, CliError> {
    match (parsed.get("payload"), parsed.get("payload-file")) {
        (Some(inline), None) => Ok(inline.to_string()),
        (None, Some(path)) => Ok(std::fs::read_to_string(path)?),
        _ => Err(CliError::usage(
            "staging needs exactly one of --payload JSON or --payload-file FILE",
        )),
    }
}

/// Render a tier-wide artifact status: one block per instance with its
/// staged/soaking/active versions and lifecycle history.
fn artifact_status_table(status: &cbes_reconfig::StatusReport) -> String {
    let mut out = String::new();
    for i in &status.instances {
        if !i.reconfigurable {
            let _ = writeln!(out, "{}: not reconfigurable (no --state-dir)", i.addr);
            continue;
        }
        let s = &i.status;
        let fmt = |a: &Option<cbes_reconfig::ArtifactSummary>| {
            a.as_ref()
                .map(|a| format!("v{} ({})", a.version, a.kind))
                .unwrap_or_else(|| "none".to_string())
        };
        let soaking = s
            .soaking
            .as_ref()
            .map(|s| format!("v{} ({}, falls back to v{})", s.version, s.kind, s.previous))
            .unwrap_or_else(|| "none".to_string());
        let _ = writeln!(
            out,
            "{}: active {}, soaking {soaking}, staged {}, {} journal record(s)",
            i.addr,
            fmt(&s.active),
            fmt(&s.staged),
            s.journal_records
        );
        if let Some(r) = &s.last_rollback {
            let _ = writeln!(
                out,
                "  last rollback: v{} ({}) — {}",
                r.version,
                if r.auto { "auto" } else { "operator" },
                r.reason
            );
        }
    }
    out
}

/// `cbes artifact <stage|apply|accept|rollback|status|list> <addr>` —
/// drive the live-reconfiguration lifecycle of a daemon or, pointed at
/// a router, of the whole tier (stage/apply/accept/rollback broadcast;
/// status merges one row per instance).
pub fn artifact(parsed: &Parsed) -> Result<String, CliError> {
    let sub = parsed.positional0().map_err(|_| {
        CliError::usage(
            "`artifact` needs a subcommand (stage | apply | accept | rollback | status | list)",
        )
    })?;
    let addr = parsed
        .positional
        .get(1)
        .map(String::as_str)
        .ok_or_else(|| {
            CliError::usage(format!("`artifact {sub}` needs a daemon or router address"))
        })?;
    let mut client = connect(parsed, addr)?;
    let mut out = String::new();
    match sub {
        "stage" => {
            let kind = parsed.require("kind")?;
            let payload = artifact_payload(parsed)?;
            let (version, state, _) = client.stage(kind, &payload).map_err(client_err)?;
            let _ = writeln!(out, "staged artifact v{version} ({kind}): {state}");
            let _ = writeln!(out, "next: cbes artifact apply {addr}");
        }
        "apply" => {
            let (version, state, epoch) = client.apply().map_err(client_err)?;
            let _ = writeln!(
                out,
                "artifact v{version} is {state} at epoch {epoch} — accept it once the \
                 soak looks healthy, or roll back"
            );
        }
        "accept" => {
            let (version, state, _) = client.accept().map_err(client_err)?;
            let _ = writeln!(out, "artifact v{version} is {state}");
        }
        "rollback" => {
            let reason = parsed.get("reason").unwrap_or("operator rollback");
            let (version, state, epoch) = client.rollback(reason).map_err(client_err)?;
            let _ = writeln!(
                out,
                "artifact v{version} {state} at epoch {epoch}: {reason}"
            );
        }
        "status" => {
            let status = client.artifact_status().map_err(client_err)?;
            out.push_str(&artifact_status_table(&status));
        }
        "list" => {
            let status = client.artifact_status().map_err(client_err)?;
            for i in &status.instances {
                let _ = writeln!(out, "{}:", i.addr);
                if i.status.artifacts.is_empty() {
                    let _ = writeln!(out, "  (no artifacts staged)");
                }
                for a in &i.status.artifacts {
                    let _ = writeln!(out, "  v{:<4} {:<16} {}", a.version, a.kind, a.state);
                }
            }
        }
        other => {
            return Err(CliError::usage(format!(
                "unknown artifact subcommand `{other}` \
                 (want stage | apply | accept | rollback | status | list)"
            )))
        }
    }
    Ok(out)
}

/// Render a merged trace: one row per span, indented under its parent
/// when the parent is part of the same trace, offsets relative to the
/// earliest span.
fn trace_table(trace_id: u64, spans: &[cbes_server::protocol::SpanSnapshot]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "trace {trace_id:#018x}: {} span(s)", spans.len());
    if spans.is_empty() {
        let _ = writeln!(
            out,
            "  (no spans retained — the trace may have been evicted, or the \
             request was not stamped with --trace-id)"
        );
        return out;
    }
    let t0 = spans.iter().map(|s| s.start_us).min().unwrap_or(0);
    let depth_of = |span: &cbes_server::protocol::SpanSnapshot| {
        // Walk the parent chain within this trace; cap the walk so a
        // cross-process id collision cannot loop.
        let mut depth = 0usize;
        let mut parent = span.parent;
        while parent != 0 && depth < 8 {
            match spans.iter().find(|s| s.id == parent) {
                Some(p) => {
                    depth += 1;
                    parent = p.parent;
                }
                None => break,
            }
        }
        depth
    };
    for s in spans {
        let _ = writeln!(
            out,
            "  {:indent$}{:<24} t+{:>8} us  dur {:>8} us  id {:#018x}",
            "",
            s.name,
            s.start_us.saturating_sub(t0),
            s.dur_us,
            s.id,
            indent = depth_of(s) * 2
        );
    }
    out
}

/// Render a tier membership report: the header line, then one row per
/// instance.
fn membership_table(report: &cbes_server::protocol::MembershipReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "tier `{}`: {} instances, leader {}, max epoch {}, replication lag {}",
        report.cluster,
        report.instances.len(),
        report
            .leader
            .map(|i| i.to_string())
            .unwrap_or_else(|| "none".to_string()),
        report.max_epoch,
        report.replication_lag
    );
    let _ = writeln!(
        out,
        "{} heartbeat sweeps, {} health transitions",
        report.heartbeats, report.transitions
    );
    for i in &report.instances {
        let _ = writeln!(
            out,
            "  #{} {:<21} {:<8} epoch {:<6} routed {:<6} forwarded {:<6} failed-over {}{}",
            i.index,
            i.addr,
            i.health,
            i.epoch,
            i.routed,
            i.forwarded,
            i.failed_over,
            if i.leader { "  [leader]" } else { "" }
        );
    }
    out
}

/// `cbes route <serve|status|where>` — run or inspect the scale-out
/// routing tier.
///
/// * `serve` boots a router over a static seed list (repeated
///   `--instance HOST:PORT` and/or comma-separated `--instances`) and
///   blocks until a wire-level shutdown drains the tier.
/// * `status <addr>` renders a running router's membership report.
/// * `where <addr> --app NAME [--cluster NAME]` asks a router which
///   instance owns a routing key.
pub fn route(parsed: &Parsed) -> Result<String, CliError> {
    let sub = parsed
        .positional0()
        .map_err(|_| CliError::usage("`route` needs a subcommand (serve | status | where)"))?;
    match sub {
        "serve" => route_serve(parsed),
        "status" => {
            let addr = parsed
                .positional
                .get(1)
                .map(String::as_str)
                .ok_or_else(|| CliError::usage("`route status` needs the router address"))?;
            let mut client = connect(parsed, addr)?;
            let report = client.membership().map_err(client_err)?;
            Ok(membership_table(&report))
        }
        "where" => {
            let addr = parsed
                .positional
                .get(1)
                .map(String::as_str)
                .ok_or_else(|| CliError::usage("`route where` needs the router address"))?;
            let cluster = parsed.get("cluster").unwrap_or("default");
            let app = parsed.require("app")?;
            let mut client = connect(parsed, addr)?;
            let (hash, primary, replicas) = client.route(cluster, app).map_err(client_err)?;
            let mut out = String::new();
            let _ = writeln!(
                out,
                "({cluster}, {app}) -> {hash:#018x} -> instance {} at {}",
                primary.index, primary.addr
            );
            for r in &replicas {
                let _ = writeln!(out, "  replica: instance {} at {}", r.index, r.addr);
            }
            Ok(out)
        }
        other => Err(CliError::usage(format!(
            "unknown route subcommand `{other}` (want serve | status | where)"
        ))),
    }
}

/// `cbes route serve` — boot the routing front-tier and block until it
/// drains.
fn route_serve(parsed: &Parsed) -> Result<String, CliError> {
    let mut seeds: Vec<String> = parsed.get_all("instance").to_vec();
    if let Some(list) = parsed.get("instances") {
        seeds.extend(list.split(',').map(|s| s.trim().to_string()));
    }
    seeds.retain(|s| !s.is_empty());
    if seeds.is_empty() {
        return Err(CliError::usage(
            "`route serve` needs at least one seed (--instance HOST:PORT, \
             or --instances A,B,..)",
        ));
    }
    let membership = cbes_router::MembershipConfig {
        cluster: parsed.get("cluster").unwrap_or("default").to_string(),
        heartbeat: std::time::Duration::from_millis(parsed.get_parsed("heartbeat-ms", 250u64)?),
        probe_timeout: std::time::Duration::from_millis(
            parsed.get_parsed("probe-timeout-ms", 500u64)?,
        ),
        policy: cbes_core::HealthPolicy {
            suspect_after: parsed.get_parsed("suspect-after", 1u64)?,
            down_after: parsed.get_parsed("down-after", 3u64)?,
            ..cbes_core::HealthPolicy::default()
        },
        replicas: parsed.get_parsed("replicas", 1usize)?,
    };
    let cluster = membership.cluster.clone();
    let instances = seeds.len();
    let handle = cbes_router::RouterServer::start(cbes_router::TierConfig {
        addr: parsed.get("addr").unwrap_or("127.0.0.1:9078").to_string(),
        seeds,
        membership,
    })?;
    let addr = handle.addr();
    eprintln!("cbes-router: routing `{cluster}` over {instances} instances on {addr}");
    if let Some(path) = parsed.get("addr-file") {
        std::fs::write(path, addr.to_string())?;
    }
    let table = handle.membership().clone();
    handle.join();
    let report = table.report();
    Ok(format!(
        "cbes-router on {addr} drained: {} heartbeat sweeps, {} health transitions\n",
        report.heartbeats, report.transitions
    ))
}

/// Parse a semicolon-separated list of comma-separated mappings,
/// e.g. `"0,1;4,5"`.
fn parse_mapping_list(s: &str) -> Result<Vec<Mapping>, CliError> {
    s.split(';')
        .map(|m| parse_node_list(m).map(Mapping::new))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(v: &[&str]) -> Parsed {
        Parsed::parse(v.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn preset_lookup() {
        assert!(preset("centurion").is_ok());
        assert!(preset("orange-grove").is_ok());
        assert!(preset("grove").is_ok());
        assert!(preset("nope").is_err());
    }

    #[test]
    fn cluster_command_reports_architectures() {
        let out = cluster(&parsed(&["cluster", "orange-grove"])).unwrap();
        assert!(out.contains("28 nodes"));
        assert!(out.contains("Alpha"));
        assert!(out.contains("SPARC"));
        assert!(out.contains("latency spread"));
    }

    #[test]
    fn topology_emits_dot() {
        let out = topology(&parsed(&["topology", "demo"])).unwrap();
        assert!(out.starts_with("graph"));
        assert!(out.contains("sw0 -- sw1") || out.contains("sw1 -- sw0"));
    }

    #[test]
    fn custom_cluster_spec_file_is_accepted() {
        let dir = std::env::temp_dir().join(format!("cbes-spec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("my.json");
        let ps = path.to_str().unwrap().to_string();
        export_cluster(&parsed(&["export-cluster", "demo", "--out", &ps])).unwrap();
        let out = cluster(&parsed(&["cluster", &ps])).unwrap();
        assert!(out.contains("8 nodes"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn calibrate_reports_clique_rounds() {
        let out = calibrate(&parsed(&["calibrate", "demo"])).unwrap();
        assert!(out.contains("clique rounds"), "{out}");
    }

    #[test]
    fn workload_from_validates_class_and_name() {
        assert!(workload_from(&parsed(&["profile", "demo", "--workload", "lu"])).is_ok());
        assert!(workload_from(&parsed(&[
            "profile",
            "demo",
            "--workload",
            "lu",
            "--class",
            "Q"
        ]))
        .is_err());
        assert!(workload_from(&parsed(&["profile", "demo", "--workload", "zz"])).is_err());
    }

    #[test]
    fn simulate_fills_ranks_from_mapping() {
        let out = simulate(&parsed(&[
            "simulate",
            "demo",
            "--workload",
            "cg",
            "--class",
            "S",
            "--mapping",
            "0,1,2,3,4,5",
        ]))
        .unwrap();
        assert!(out.contains("cg.S.6"), "{out}");
    }

    #[test]
    fn serve_and_request_round_trip() {
        let dir = std::env::temp_dir().join(format!("cbes-cli-serve-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let addr_file = dir.join("addr");
        let af = addr_file.to_str().unwrap().to_string();
        let profile_path = dir.join("p.json");
        let ps = profile_path.to_str().unwrap().to_string();
        profile(&parsed(&[
            "profile",
            "demo",
            "--workload",
            "ep",
            "--class",
            "S",
            "--ranks",
            "2",
            "--out",
            &ps,
        ]))
        .unwrap();

        let server = std::thread::spawn(move || {
            serve(&parsed(&[
                "serve",
                "demo",
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "2",
                "--addr-file",
                &af,
            ]))
        });
        let addr = loop {
            if let Ok(a) = std::fs::read_to_string(&addr_file) {
                if !a.is_empty() {
                    break a;
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        };

        let out = request(&parsed(&["request", &addr, "register", "--profile", &ps])).unwrap();
        assert!(out.contains("registered"), "{out}");
        let out = request(&parsed(&[
            "request",
            &addr,
            "compare",
            "--app",
            "ep.S.2",
            "--mappings",
            "0,1;0,4",
        ]))
        .unwrap();
        assert!(out.contains("epoch 0"), "{out}");
        let out = request(&parsed(&[
            "request",
            &addr,
            "batch",
            "--app",
            "ep.S.2",
            "--mappings",
            "0,1;0,4;2,3",
        ]))
        .unwrap();
        assert!(out.contains("epoch 0"), "{out}");
        assert_eq!(out.matches("bottleneck").count(), 3, "{out}");
        let out = request(&parsed(&[
            "request", &addr, "observe", "--nodes", "8", "--load", "0=0.5",
        ]))
        .unwrap();
        assert!(out.contains("epoch is now 1"), "{out}");
        let out = request(&parsed(&["request", &addr, "stats", "--timeout", "5"])).unwrap();
        assert!(out.contains("epoch  1"), "{out}");
        assert!(out.contains("profiles  1"), "{out}");
        assert!(out.contains("served: compare  1"), "{out}");
        assert!(out.contains("uptime"), "{out}");
        let out = metrics(&parsed(&["metrics", &addr])).unwrap();
        assert!(out.contains("server.service_time_us"), "{out}");
        assert!(out.contains("server.action.compare  1"), "{out}");
        let out = metrics(&parsed(&["metrics", &addr, "--format", "json"])).unwrap();
        assert!(out.contains("\"server.queue_wait_us\""), "{out}");

        // A traced request leaves connected spans behind: the CLI root
        // plus the server-side action span on the same trace id.
        let out = request(&parsed(&[
            "request",
            &addr,
            "compare",
            "--app",
            "ep.S.2",
            "--mappings",
            "0,1",
            "--trace-id",
            "7701",
        ]))
        .unwrap();
        assert!(out.contains("epoch"), "{out}");
        let out = request(&parsed(&["request", &addr, "trace", "--trace-id", "7701"])).unwrap();
        assert!(out.contains("compare"), "{out}");
        assert!(out.contains("cli.request"), "{out}");
        // Untraced requests never join a trace.
        let out = request(&parsed(&[
            "request",
            &addr,
            "trace",
            "--trace-id",
            "424242",
        ]))
        .unwrap();
        assert!(out.contains("0 span(s)"), "{out}");
        let err =
            request(&parsed(&["request", &addr, "trace"])).expect_err("trace needs --trace-id");
        assert!(err.to_string().contains("--trace-id"), "{err}");

        // The flight recorder dumps on demand.
        let out = request(&parsed(&["request", &addr, "dump-flight"])).unwrap();
        assert!(out.contains("flight recorder dumped"), "{out}");

        // One `top` frame renders the windowed rates for the endpoint.
        let out = top(&parsed(&["top", &addr, "--iterations", "1"])).unwrap();
        assert!(out.contains("endpoint"), "{out}");
        assert!(out.contains(&addr), "{out}");

        let out = request(&parsed(&["request", &addr, "shutdown"])).unwrap();
        assert!(out.contains("draining"), "{out}");

        let summary = server.join().unwrap().unwrap();
        assert!(summary.contains("drained"), "{summary}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn route_tier_round_trip() {
        let dir = std::env::temp_dir().join(format!("cbes-cli-route-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let wait_addr = |path: &std::path::Path| loop {
            if let Ok(a) = std::fs::read_to_string(path) {
                if !a.is_empty() {
                    break a;
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        };

        // Two daemon instances on free ports.
        let mut daemons = Vec::new();
        let mut addrs = Vec::new();
        for i in 0..2 {
            let af = dir.join(format!("addr-{i}"));
            let afs = af.to_str().unwrap().to_string();
            daemons.push(std::thread::spawn(move || {
                serve(&parsed(&[
                    "serve",
                    "demo",
                    "--addr",
                    "127.0.0.1:0",
                    "--workers",
                    "2",
                    "--addr-file",
                    &afs,
                ]))
            }));
            addrs.push(wait_addr(&af));
        }

        // The router in front of them.
        let rf = dir.join("router-addr");
        let rfs = rf.to_str().unwrap().to_string();
        let (a0, a1) = (addrs[0].clone(), addrs[1].clone());
        let router = std::thread::spawn(move || {
            route(&parsed(&[
                "route",
                "serve",
                "--instance",
                &a0,
                "--instance",
                &a1,
                "--cluster",
                "demo",
                "--addr",
                "127.0.0.1:0",
                "--addr-file",
                &rfs,
                "--heartbeat-ms",
                "25",
            ]))
        });
        let raddr = wait_addr(&rf);

        // Wait until a heartbeat sweep marks both instances healthy.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let status = route(&parsed(&["route", "status", &raddr])).unwrap();
            if status.matches("healthy").count() == 2 {
                assert!(status.contains("tier `demo`"), "{status}");
                assert!(status.contains("[leader]"), "{status}");
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "tier never healthy: {status}"
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        }

        // Placement answers come from the router's own ring.
        let out = route(&parsed(&[
            "route",
            "where",
            &raddr,
            "--app",
            "lu.A.8",
            "--cluster",
            "demo",
        ]))
        .unwrap();
        assert!(out.contains("instance"), "{out}");

        // The membership request action renders the same report.
        let out = request(&parsed(&["request", &raddr, "membership"])).unwrap();
        assert!(out.contains("tier `demo`"), "{out}");

        // Multi-address metrics merge into one tier-wide report.
        let out = metrics(&parsed(&["metrics", &addrs[0], "--addr", &addrs[1]])).unwrap();
        assert!(out.contains("merged 2 instances"), "{out}");
        assert!(out.contains("server.served"), "{out}");

        // Shutdown through the router drains daemons and router alike.
        let out = request(&parsed(&["request", &raddr, "shutdown"])).unwrap();
        assert!(out.contains("draining"), "{out}");
        for d in daemons {
            let summary = d.join().unwrap().unwrap();
            assert!(summary.contains("drained"), "{summary}");
        }
        let summary = router.join().unwrap().unwrap();
        assert!(summary.contains("cbes-router"), "{summary}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn artifact_lifecycle_round_trip() {
        let dir = std::env::temp_dir().join(format!("cbes-cli-artifact-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let addr_file = dir.join("addr");
        let af = addr_file.to_str().unwrap().to_string();
        let state = dir.join("state").to_str().unwrap().to_string();
        let server = std::thread::spawn(move || {
            serve(&parsed(&[
                "serve",
                "demo",
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "1",
                "--addr-file",
                &af,
                "--state-dir",
                &state,
            ]))
        });
        let addr = loop {
            if let Ok(a) = std::fs::read_to_string(&addr_file) {
                if !a.is_empty() {
                    break a;
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        };

        let limits_file = dir.join("limits.json");
        std::fs::write(
            &limits_file,
            r#"{"max_rps": 80.0, "shed_retry_after_ms": 5}"#,
        )
        .unwrap();
        let lf = limits_file.to_str().unwrap().to_string();
        let out = artifact(&parsed(&[
            "artifact",
            "stage",
            &addr,
            "--kind",
            "serving_limits",
            "--payload-file",
            &lf,
        ]))
        .unwrap();
        assert!(out.contains("staged artifact v1"), "{out}");
        let out = artifact(&parsed(&["artifact", "apply", &addr])).unwrap();
        assert!(out.contains("soaking"), "{out}");
        let out = artifact(&parsed(&["artifact", "status", &addr])).unwrap();
        assert!(out.contains("soaking v1"), "{out}");
        let out = artifact(&parsed(&["artifact", "accept", &addr])).unwrap();
        assert!(out.contains("v1 is active"), "{out}");
        let out = artifact(&parsed(&["artifact", "list", &addr])).unwrap();
        assert!(out.contains("serving_limits"), "{out}");
        assert!(out.contains("active"), "{out}");
        // The generic request path speaks the same verbs.
        let out = request(&parsed(&["request", &addr, "artifact-status"])).unwrap();
        assert!(out.contains("active v1"), "{out}");
        // Staging from a bad payload is a server-side validation error.
        let err = artifact(&parsed(&[
            "artifact",
            "stage",
            &addr,
            "--kind",
            "serving_limits",
            "--payload",
            "not json",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
        // Missing payload flags are a usage error before any connection.
        let err = artifact(&parsed(&[
            "artifact",
            "stage",
            &addr,
            "--kind",
            "serving_limits",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");

        request(&parsed(&["request", &addr, "shutdown"])).unwrap();
        server.join().unwrap().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn top_frame_renders_windowed_rates_and_quantiles() {
        let r = cbes_obs::Registry::new();
        r.counter("server.served").add(120);
        r.counter("server.overloaded").add(3);
        for v in [100, 200, 5000] {
            r.histogram("server.service_time_us").record(v);
        }
        let addr = "10.0.0.1:9077".to_string();
        let mut totals = TopTotals::new();
        let rows = vec![(addr.clone(), Some(r.snapshot()))];
        let frame = top_frame(&rows, &mut totals);
        assert!(frame.contains("endpoint"), "{frame}");
        assert!(frame.contains("10.0.0.1:9077"), "{frame}");
        // The first frame has no baseline, so the delta is the total.
        assert!(frame.contains("120"), "{frame}");
        let err = top(&parsed(&["top"])).unwrap_err();
        assert!(err.to_string().contains("address"), "{err}");
        let err = top(&parsed(&["top", "127.0.0.1:1", "--iterations", "0"])).unwrap_err();
        assert!(err.to_string().contains("--iterations"), "{err}");
    }

    #[test]
    fn top_tolerates_restarts_and_dead_endpoints() {
        let addr = "10.0.0.1:9077".to_string();
        let mut totals = TopTotals::new();
        // Frame 1: 120 served.
        let r = cbes_obs::Registry::new();
        r.counter("server.served").add(120);
        top_frame(&[(addr.clone(), Some(r.snapshot()))], &mut totals);
        // The endpoint restarts: its counters reset below the baseline.
        // The delta must clamp at zero, not underflow.
        let r = cbes_obs::Registry::new();
        r.counter("server.served").add(5);
        let frame = top_frame(&[(addr.clone(), Some(r.snapshot()))], &mut totals);
        assert!(
            frame.contains(&format!("{:<21} {:>7}", addr, 0)),
            "reset counters must clamp the delta at zero: {frame}"
        );
        // A frame where the endpoint is unreachable renders a down row
        // and drops the baseline...
        let frame = top_frame(&[(addr.clone(), None)], &mut totals);
        assert!(frame.contains("(down)"), "{frame}");
        assert!(totals.is_empty(), "down endpoints lose their baseline");
        // ...so the frame after it comes back starts fresh.
        let r = cbes_obs::Registry::new();
        r.counter("server.served").add(7);
        let frame = top_frame(&[(addr.clone(), Some(r.snapshot()))], &mut totals);
        assert!(frame.contains(&format!("{:<21} {:>7}", addr, 7)), "{frame}");
        // One dead endpoint must not hide the live one next to it.
        let r = cbes_obs::Registry::new();
        r.counter("server.served").add(9);
        let frame = top_frame(
            &[
                ("10.0.0.2:9077".to_string(), None),
                (addr.clone(), Some(r.snapshot())),
            ],
            &mut totals,
        );
        assert!(frame.contains("(down)"), "{frame}");
        assert!(frame.contains("10.0.0.1:9077"), "{frame}");
    }

    #[test]
    fn trace_table_indents_children_under_parents() {
        use cbes_server::protocol::SpanSnapshot;
        let spans = vec![
            SpanSnapshot {
                name: "cli.request".to_string(),
                trace: 9,
                id: 1,
                parent: 0,
                start_us: 100,
                dur_us: 900,
            },
            SpanSnapshot {
                name: "compare".to_string(),
                trace: 9,
                id: 2,
                parent: 1,
                start_us: 300,
                dur_us: 500,
            },
        ];
        let out = trace_table(9, &spans);
        assert!(out.contains("2 span(s)"), "{out}");
        assert!(out.contains("cli.request"), "{out}");
        // The child row is indented two spaces deeper and offset from t0.
        assert!(out.contains("\n    compare"), "{out}");
        assert!(out.contains("t+     200 us"), "{out}");
        assert!(trace_table(9, &[]).contains("no spans retained"));
    }

    #[test]
    fn request_times_out_against_an_unresponsive_server() {
        // A listener that never accepts: the connection sits in the
        // kernel backlog, the stats request is written, and the reply
        // never comes. Without an I/O deadline this would hang forever.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let started = std::time::Instant::now();
        let err = request(&parsed(&["request", &addr, "stats", "--timeout", "0.3"]))
            .expect_err("an unanswered request must fail, not hang");
        assert!(
            started.elapsed() < std::time::Duration::from_secs(5),
            "timed out too slowly: {err}"
        );
    }

    #[test]
    fn nonpositive_timeout_is_a_usage_error() {
        let err = request(&parsed(&[
            "request",
            "127.0.0.1:1",
            "stats",
            "--timeout",
            "0",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--timeout"), "{err}");
        let err = metrics(&parsed(&["metrics", "127.0.0.1:1", "--timeout", "-1"])).unwrap_err();
        assert!(err.to_string().contains("--timeout"), "{err}");
    }

    #[test]
    fn metrics_rejects_unknown_format() {
        let err = metrics(&parsed(&["metrics", "127.0.0.1:1", "--format", "xml"])).unwrap_err();
        assert!(err.to_string().contains("xml"), "{err}");
    }

    #[test]
    fn draining_daemon_reply_maps_to_a_transport_error() {
        // A mid-drain daemon answers with a `shutting_down` server error;
        // scripts must see exit 3 (service unavailable), not exit 4
        // (request rejected) — the same class as a connection refusal.
        let err = client_err(cbes_server::client::ClientError::Server {
            kind: cbes_server::protocol::error_kind::SHUTTING_DOWN.to_string(),
            message: "draining".to_string(),
            retry_after_ms: 0,
        });
        assert!(
            matches!(&err, CliError::Transport(m) if m.contains("draining")),
            "{err:?}"
        );
        assert_eq!(err.exit_code(), 3);
        // Other server errors keep the distinct exit code.
        let err = client_err(cbes_server::client::ClientError::Server {
            kind: cbes_server::protocol::error_kind::SERVICE.to_string(),
            message: "no such app".to_string(),
            retry_after_ms: 0,
        });
        assert_eq!(err.exit_code(), 4);
    }

    #[test]
    fn schedule_rejects_unknown_scheduler() {
        // Write a tiny profile first.
        let dir = std::env::temp_dir().join(format!("cbes-cli-sched-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("p.json");
        let ps = p.to_str().unwrap().to_string();
        profile(&parsed(&[
            "profile",
            "demo",
            "--workload",
            "ep",
            "--class",
            "S",
            "--ranks",
            "4",
            "--out",
            &ps,
        ]))
        .unwrap();
        let err = schedule(&parsed(&[
            "schedule",
            "demo",
            "--profile",
            &ps,
            "--scheduler",
            "quantum",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("quantum"));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A miniature workspace from the analyzer's own fixture corpus.
    fn analyzer_fixture(name: &str) -> String {
        format!(
            "{}/../analyzer/tests/fixtures/{name}",
            env!("CARGO_MANIFEST_DIR")
        )
    }

    #[test]
    fn analyze_static_rejects_unknown_rules() {
        let err = analyze(&parsed(&["analyze", "--rules", "nope"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        assert!(err.to_string().contains("lock_order"), "{err}");
    }

    #[test]
    fn analyze_static_passes_on_a_clean_tree() {
        let root = analyzer_fixture("clean");
        let out = analyze(&parsed(&["analyze", "--root", &root])).unwrap();
        assert!(out.contains("analyze.findings 0"), "{out}");
        assert!(out.contains("analyze.waived 0"), "{out}");
    }

    #[test]
    fn analyze_static_diff_baseline_suppresses_known_findings() {
        let root = analyzer_fixture("unsafe_audit");
        let json =
            std::env::temp_dir().join(format!("cbes-cli-baseline-{}.json", std::process::id()));
        let js = json.to_str().unwrap().to_string();

        // First run: findings are fresh, the command fails the gate and
        // writes the report that becomes the baseline.
        let err = analyze(&parsed(&[
            "analyze",
            "--root",
            &root,
            "--rules",
            "unsafe_audit",
            "--json",
            &js,
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Analysis { fresh: 3, .. }), "{err}");
        assert!(
            err.to_string().contains("analyze.rule.unsafe_audit 3"),
            "{err}"
        );

        // Second run against the baseline: everything is known, so the
        // gate passes while still reporting the raw counts.
        let out = analyze(&parsed(&[
            "analyze",
            "--root",
            &root,
            "--rules",
            "unsafe_audit",
            "--diff-baseline",
            &js,
        ]))
        .unwrap();
        assert!(
            out.contains("baseline: 3 known finding(s) suppressed, 0 fresh"),
            "{out}"
        );
        std::fs::remove_file(&json).ok();
    }
}
