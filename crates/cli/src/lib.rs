//! The `cbes` command-line interface.
//!
//! Exposes the CBES life-cycle as subcommands over the modelled clusters:
//!
//! ```text
//! cbes cluster <preset>                          inspect a cluster model
//! cbes workloads                                 list workload generators
//! cbes calibrate <preset> [--seed N] [--out F]   off-line latency model
//! cbes profile <preset> --workload W [...]       trace + reduce a profile
//! cbes predict <preset> --profile F --mapping M  evaluate one mapping
//! cbes schedule <preset> --profile F [...]       run a scheduler
//! cbes simulate <preset> --workload W --mapping M   one measured run
//! ```
//!
//! The library half is the testable core: [`run`] takes an argument vector
//! and returns the rendered output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod error;

pub use error::CliError;

use args::Parsed;

/// Usage text.
pub const USAGE: &str = "\
usage: cbes <command> [options]

commands:
  cluster <preset>            describe a cluster model (centurion | orange-grove | demo)
  topology <preset>           emit the cluster topology as Graphviz DOT [--out FILE]
  export-cluster <preset>     dump a preset as editable ClusterSpec JSON [--out FILE]
                              (every <preset> argument also accepts a .json spec file)
  workloads                   list available workload generators
  calibrate <preset>          run the off-line calibration campaign
      [--seed N] [--out FILE]
  profile <preset>            profile a workload on a profiling mapping
      --workload NAME [--class S|A|B] [--size N] [--ranks N]
      [--nodes 0,1,..] [--seed N] [--out FILE]
  predict <preset>            predict one mapping's execution time
      --profile FILE --mapping 0,1,.. [--load NODE=AVAIL,..]
  schedule <preset>           select a mapping with a scheduler
      --profile FILE [--scheduler cs|ncs|rs|greedy|ga]
      [--pool 0,1,..] [--seed N] [--load NODE=AVAIL,..]
  simulate <preset>           one measured run of a workload on a mapping
      --workload NAME [--class S|A|B] [--size N]
      --mapping 0,1,.. [--seed N] [--load NODE=AVAIL,..]
  analyze <preset>            trace a run and print post-mortem statistics
      --workload NAME --mapping 0,1,.. [--seed N]
  analyze                     static analysis of the workspace source
      [--root DIR] [--rules a,b,..] [--json FILE]
      [--diff-baseline FILE]   fail only on findings absent from a
                               previous --json report
      (exits 0 when clean, 1 on unwaived findings, 2 usage)
  serve <preset>              run the CBES daemon (blocks until shutdown)
      [--addr HOST:PORT] [--workers N] [--queue N] [--timeout-ms N]
      [--forecast last|mean|median|adaptive] [--profiles DIR]
      [--seed N] [--addr-file FILE]
      [--max-line-bytes N] [--max-bad-frames N] [--retry-after-ms N]
      [--suspect-after SWEEPS] [--down-after SWEEPS] [--max-rps N]
      [--state-dir DIR]        enable the live-reconfiguration artifact
                               store (crash-safe journal under DIR)
  request <addr> <action>     issue one request to a running daemon
      stats | metrics | shutdown | membership
      register --profile FILE
      compare  --app NAME --mappings 0,1;4,5
      best-of  --app NAME --mappings 0,1;4,5
      schedule --app NAME --pool 0,1,.. [--iters N] [--seed N]
      observe  --nodes N --load NODE=AVAIL,..
      observe-partial --nodes N --load NODE=AVAIL,.. [--silent 3,5,..]
      route    --app NAME [--cluster NAME]
      replicate --epoch N --nodes N --load NODE=AVAIL,.. [--silent 3,5,..]
      trace    --trace-id N    fetch the retained spans of trace N
      dump-flight              dump the anomaly flight recorder to disk
      stage --kind K --payload JSON | --payload-file FILE
      apply | accept | rollback [--reason R] | artifact-status
      (all request actions accept --timeout SECONDS, default 10, and
       --trace-id N to stamp the request with trace context;
       exit codes: 2 usage, 3 transport, 4 server error, 5 overload-shed)
  artifact <sub> <addr>       live-reconfiguration lifecycle; point at a
      router to drive the whole tier at once
      stage    --kind latency_model|cluster_preset|serving_limits
               --payload JSON | --payload-file FILE
      apply                    activate the staged artifact (starts a soak)
      accept                   promote the soaking artifact
      rollback [--reason R]    reinstate the previous configuration
      status                   lifecycle state, one row per instance
      list                     every version the store has ever staged
  metrics <addr>.. [--addr A]  fetch observability snapshots from one or
      more daemons and merge them into a single tier-wide report
      [--format summary|json] [--timeout SECONDS]
  top <addr>.. [--addr A]     live tier view: per-second request/shed
      rates and rolling p50/p99 from the sliding-window metrics
      [--iterations N] [--interval-ms N] [--timeout SECONDS]
  route serve                 run the scale-out routing tier (blocks)
      --instance HOST:PORT .. | --instances A,B,..
      [--cluster NAME] [--addr HOST:PORT] [--addr-file FILE]
      [--replicas N] [--heartbeat-ms N] [--probe-timeout-ms N]
      [--suspect-after SWEEPS] [--down-after SWEEPS]
  route status <addr>         membership report of a running router
  route where <addr>          which instance owns a routing key
      --app NAME [--cluster NAME]
";

/// Parse and execute an argument vector; returns the output text.
pub fn run<I: IntoIterator<Item = String>>(argv: I) -> Result<String, CliError> {
    let parsed = Parsed::parse(argv)?;
    match parsed.command.as_str() {
        "cluster" => commands::cluster(&parsed),
        "topology" => commands::topology(&parsed),
        "export-cluster" => commands::export_cluster(&parsed),
        "workloads" => commands::workloads(&parsed),
        "calibrate" => commands::calibrate(&parsed),
        "profile" => commands::profile(&parsed),
        "predict" => commands::predict(&parsed),
        "schedule" => commands::schedule(&parsed),
        "simulate" => commands::simulate(&parsed),
        "analyze" => commands::analyze(&parsed),
        "serve" => commands::serve(&parsed),
        "request" => commands::request(&parsed),
        "artifact" => commands::artifact(&parsed),
        "metrics" => commands::metrics(&parsed),
        "top" => commands::top(&parsed),
        "route" => commands::route(&parsed),
        "help" | "" => Ok(USAGE.to_string()),
        other => Err(CliError::usage(format!("unknown command `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(args: &[&str]) -> Result<String, CliError> {
        run(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn help_prints_usage() {
        assert!(call(&["help"]).unwrap().contains("usage: cbes"));
        assert!(call(&[]).is_err() || call(&["help"]).is_ok());
    }

    #[test]
    fn unknown_command_is_an_error() {
        let e = call(&["frobnicate"]).unwrap_err();
        assert!(e.to_string().contains("frobnicate"));
    }

    #[test]
    fn cluster_and_workloads_roundtrip() {
        let out = call(&["cluster", "demo"]).unwrap();
        assert!(out.contains("demo"));
        assert!(out.contains("8 nodes"));
        let out = call(&["workloads"]).unwrap();
        assert!(out.contains("lu"));
        assert!(out.contains("aztec"));
    }

    #[test]
    fn full_cli_lifecycle_in_tempdir() {
        let dir = std::env::temp_dir().join(format!("cbes-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let profile_path = dir.join("p.json");
        let profile_str = profile_path.to_str().unwrap();

        // Profile a small LU on the demo cluster.
        let out = call(&[
            "profile",
            "demo",
            "--workload",
            "lu",
            "--class",
            "S",
            "--ranks",
            "4",
            "--out",
            profile_str,
        ])
        .unwrap();
        assert!(out.contains("profiled"), "{out}");
        assert!(profile_path.exists());

        // Predict an explicit mapping.
        let out = call(&[
            "predict",
            "demo",
            "--profile",
            profile_str,
            "--mapping",
            "0,1,4,5",
        ])
        .unwrap();
        assert!(out.contains("predicted"), "{out}");

        // Schedule with CS.
        let out = call(&[
            "schedule",
            "demo",
            "--profile",
            profile_str,
            "--scheduler",
            "cs",
            "--seed",
            "3",
        ])
        .unwrap();
        assert!(out.contains("selected mapping"), "{out}");

        // Simulate a measured run.
        let out = call(&[
            "simulate",
            "demo",
            "--workload",
            "lu",
            "--class",
            "S",
            "--mapping",
            "0,1,2,3",
        ])
        .unwrap();
        assert!(out.contains("wall time"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn predict_respects_load_overrides() {
        let dir = std::env::temp_dir().join(format!("cbes-cli-load-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("p.json");
        let ps = p.to_str().unwrap();
        call(&[
            "profile",
            "demo",
            "--workload",
            "ep",
            "--class",
            "S",
            "--ranks",
            "4",
            "--out",
            ps,
        ])
        .unwrap();
        let idle = call(&["predict", "demo", "--profile", ps, "--mapping", "0,1,2,3"]).unwrap();
        let loaded = call(&[
            "predict",
            "demo",
            "--profile",
            ps,
            "--mapping",
            "0,1,2,3",
            "--load",
            "0=0.5",
        ])
        .unwrap();
        let t = |s: &str| -> f64 {
            s.split("predicted execution time: ")
                .nth(1)
                .unwrap()
                .split_whitespace()
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(t(&loaded) > t(&idle), "idle: {idle} loaded: {loaded}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
