//! CLI errors.

use std::fmt;

/// Errors surfaced to the command-line user.
#[derive(Debug)]
pub enum CliError {
    /// Bad arguments; the message explains what and how.
    Usage(String),
    /// Filesystem problems reading/writing artifacts.
    Io(std::io::Error),
    /// Malformed JSON artifact.
    Json(serde_json::Error),
    /// A domain operation failed (simulation, scheduling, ...).
    Domain(String),
}

impl CliError {
    /// A usage error with context.
    pub fn usage(msg: impl Into<String>) -> Self {
        CliError::Usage(msg.into())
    }

    /// A domain error with context.
    pub fn domain(msg: impl Into<String>) -> Self {
        CliError::Domain(msg.into())
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}\n(run `cbes help` for usage)"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Json(e) => write!(f, "malformed artifact: {e}"),
            CliError::Domain(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_usage_hint() {
        assert!(CliError::usage("bad").to_string().contains("cbes help"));
        assert!(CliError::domain("x").to_string().contains('x'));
    }
}
