//! CLI errors.

use std::fmt;

/// Errors surfaced to the command-line user.
#[derive(Debug)]
pub enum CliError {
    /// Bad arguments; the message explains what and how.
    Usage(String),
    /// Filesystem problems reading/writing artifacts.
    Io(std::io::Error),
    /// Malformed JSON artifact.
    Json(serde_json::Error),
    /// A domain operation failed (simulation, scheduling, ...).
    Domain(String),
    /// The daemon could not be reached, or the connection broke before a
    /// well-formed reply arrived.
    Transport(String),
    /// The daemon answered with an error reply.
    Server {
        /// Machine-readable error class from the wire protocol.
        kind: String,
        /// Human-readable detail.
        message: String,
    },
    /// The daemon shed the request under load; retry after the hint.
    Shed {
        /// Human-readable detail.
        message: String,
        /// Server back-off hint, milliseconds (`0` = none).
        retry_after_ms: u64,
    },
    /// `cbes analyze` found unwaived static-analysis findings (beyond
    /// the baseline, when one was given). The rendered report rides in
    /// the error so it reaches the user; exit code 1.
    Analysis {
        /// The full findings report, as rendered for the terminal.
        report: String,
        /// Unwaived findings counted against the run.
        fresh: usize,
    },
}

impl CliError {
    /// A usage error with context.
    pub fn usage(msg: impl Into<String>) -> Self {
        CliError::Usage(msg.into())
    }

    /// A domain error with context.
    pub fn domain(msg: impl Into<String>) -> Self {
        CliError::Domain(msg.into())
    }

    /// The process exit code for this error, so scripts can distinguish
    /// failure classes: `2` usage, `3` transport (daemon unreachable or
    /// connection broken), `4` server-reported error, `5` overload-shed
    /// (retryable), `1` everything else.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Transport(_) => 3,
            CliError::Server { .. } => 4,
            CliError::Shed { .. } => 5,
            _ => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}\n(run `cbes help` for usage)"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Json(e) => write!(f, "malformed artifact: {e}"),
            CliError::Domain(m) => write!(f, "{m}"),
            CliError::Transport(m) => write!(f, "transport error: {m}"),
            CliError::Server { kind, message } => write!(f, "server error ({kind}): {message}"),
            CliError::Shed {
                message,
                retry_after_ms,
            } => write!(
                f,
                "request shed: {message} (retry after {retry_after_ms} ms)"
            ),
            CliError::Analysis { report, fresh } => {
                write!(f, "{report}static analysis: {fresh} unwaived finding(s)")
            }
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_usage_hint() {
        assert!(CliError::usage("bad").to_string().contains("cbes help"));
        assert!(CliError::domain("x").to_string().contains('x'));
    }

    #[test]
    fn exit_codes_distinguish_failure_classes() {
        assert_eq!(CliError::usage("u").exit_code(), 2);
        assert_eq!(CliError::Transport("refused".into()).exit_code(), 3);
        assert_eq!(
            CliError::Server {
                kind: "service".into(),
                message: "unknown app".into()
            }
            .exit_code(),
            4
        );
        assert_eq!(
            CliError::Shed {
                message: "queue full".into(),
                retry_after_ms: 25
            }
            .exit_code(),
            5
        );
        assert_eq!(CliError::domain("d").exit_code(), 1);
    }
}
