//! Minimal hand-rolled argument parsing.

use crate::error::CliError;
use std::collections::BTreeMap;

/// A parsed command line: command word, positional arguments, and
/// `--flag value` pairs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Parsed {
    /// The subcommand (first token).
    pub command: String,
    /// Positional arguments after the command.
    pub positional: Vec<String>,
    /// `--key value` options (last occurrence wins).
    pub flags: BTreeMap<String, String>,
    /// Every occurrence of each `--key value`, in order, for flags that
    /// may repeat (e.g. `--addr` once per tier instance).
    pub multi: BTreeMap<String, Vec<String>>,
}

impl Parsed {
    /// Parse an argument vector (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Self, CliError> {
        let mut it = argv.into_iter();
        let command = it
            .next()
            .ok_or_else(|| CliError::usage("no command given"))?;
        let mut out = Parsed {
            command,
            ..Default::default()
        };
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::usage(format!("--{key} needs a value")))?;
                out.multi
                    .entry(key.to_string())
                    .or_default()
                    .push(value.clone());
                out.flags.insert(key.to_string(), value);
            } else {
                out.positional.push(tok);
            }
        }
        Ok(out)
    }

    /// The first positional argument (e.g. the preset name).
    pub fn positional0(&self) -> Result<&str, CliError> {
        self.positional
            .first()
            .map(String::as_str)
            .ok_or_else(|| CliError::usage(format!("`{}` needs a cluster preset", self.command)))
    }

    /// A required flag.
    pub fn require(&self, key: &str) -> Result<&str, CliError> {
        self.flags
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| CliError::usage(format!("`{}` requires --{key}", self.command)))
    }

    /// An optional flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Every occurrence of a repeatable flag, in command-line order.
    pub fn get_all(&self, key: &str) -> &[String] {
        self.multi.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// An optional flag parsed to a type, with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::usage(format!("bad value `{v}` for --{key}"))),
        }
    }
}

/// Parse a comma-separated node-id list, e.g. `"0,3,17"`.
pub fn parse_node_list(s: &str) -> Result<Vec<cbes_cluster::NodeId>, CliError> {
    s.split(',')
        .map(|tok| {
            tok.trim()
                .parse::<u32>()
                .map(cbes_cluster::NodeId)
                .map_err(|_| CliError::usage(format!("bad node id `{tok}`")))
        })
        .collect()
}

/// Parse a load override list `"0=0.5,7=0.9"` into `(node, availability)`.
pub fn parse_load_list(s: &str) -> Result<Vec<(cbes_cluster::NodeId, f64)>, CliError> {
    s.split(',')
        .map(|tok| {
            let (n, a) = tok.split_once('=').ok_or_else(|| {
                CliError::usage(format!("bad load entry `{tok}` (want NODE=AVAIL)"))
            })?;
            let node = n
                .trim()
                .parse::<u32>()
                .map_err(|_| CliError::usage(format!("bad node id `{n}`")))?;
            let avail = a
                .trim()
                .parse::<f64>()
                .map_err(|_| CliError::usage(format!("bad availability `{a}`")))?;
            if !(0.0..=1.0).contains(&avail) {
                return Err(CliError::usage(format!(
                    "availability `{a}` must be within [0, 1]"
                )));
            }
            Ok((cbes_cluster::NodeId(node), avail))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbes_cluster::NodeId;

    fn p(v: &[&str]) -> Result<Parsed, CliError> {
        Parsed::parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_positionals_and_flags() {
        let a = p(&["profile", "demo", "--workload", "lu", "--ranks", "8"]).unwrap();
        assert_eq!(a.command, "profile");
        assert_eq!(a.positional0().unwrap(), "demo");
        assert_eq!(a.require("workload").unwrap(), "lu");
        assert_eq!(a.get_parsed("ranks", 4usize).unwrap(), 8);
        assert_eq!(a.get_parsed("seed", 42u64).unwrap(), 42);
    }

    #[test]
    fn missing_values_are_usage_errors() {
        assert!(p(&["x", "--flag"]).is_err());
        assert!(p(&[]).is_err());
        let a = p(&["predict"]).unwrap();
        assert!(a.positional0().is_err());
        assert!(a.require("profile").is_err());
    }

    #[test]
    fn repeated_flags_keep_every_occurrence() {
        let a = p(&["metrics", "--addr", "a:1", "--addr", "b:2"]).unwrap();
        assert_eq!(a.get("addr"), Some("b:2"), "scalar lookup stays last-wins");
        assert_eq!(a.get_all("addr"), ["a:1".to_string(), "b:2".to_string()]);
        assert!(a.get_all("nope").is_empty());
    }

    #[test]
    fn node_list_parsing() {
        assert_eq!(
            parse_node_list("0, 3,17").unwrap(),
            vec![NodeId(0), NodeId(3), NodeId(17)]
        );
        assert!(parse_node_list("0,x").is_err());
    }

    #[test]
    fn load_list_parsing() {
        assert_eq!(
            parse_load_list("0=0.5, 3=1.0").unwrap(),
            vec![(NodeId(0), 0.5), (NodeId(3), 1.0)]
        );
        assert!(parse_load_list("0=1.5").is_err());
        assert!(parse_load_list("0:0.5").is_err());
    }

    #[test]
    fn bad_typed_flag_is_reported() {
        let a = p(&["x", "--seed", "abc"]).unwrap();
        assert!(a.get_parsed("seed", 0u64).is_err());
    }
}
