//! ASCI purple benchmark stand-ins (paper §6, table 3/4 programs).

use crate::patterns::{allreduce, compute_all, grid2d, halo2d};
use crate::Workload;
use cbes_mpisim::{Op, Program};

/// sweep3d: 3-D particle-transport wavefront solver. The paper found its
/// near-all-to-all aggregate pattern makes mapping benefits cancel
/// ("uncertain speedup") — modelled as octant sweeps whose union touches
/// all pairs, with frequent small exchanges.
pub fn sweep3d(n: usize) -> Workload {
    let iters = 30u32;
    let mut p = Program::new(n);
    for it in 0..iters {
        compute_all(&mut p, 1.5 / iters as f64);
        // Eight octant sweeps; their union of directions makes the
        // aggregate pattern effectively all-to-all, with angle-dependent
        // (pseudo-irregular) message sizes that scramble any per-round
        // locality a mapping could exploit.
        for s in 1..n {
            for r in 0..n {
                let to = (r + s) % n;
                let from = (r + n - s) % n;
                let bytes = 384 + ((r * 48271 + s * 16807 + it as usize * 31) % 1024) as u64;
                p.push(r, Op::SendRecv { to, bytes, from });
            }
        }
        // Occasional convergence check only; the sweeps dominate.
        if it % 10 == 9 {
            allreduce(&mut p, 32);
        }
    }
    Workload::new(
        format!("sweep3d.{n}"),
        p,
        "ASCI sweep3d: particle transport, near-all-to-all aggregate pattern",
    )
}

/// smg2000: semicoarsening multigrid. Three paper cases by problem size:
/// `12` (smg2000(1)), `50` (smg2000(2)), `60` (smg2000(3)). Computation
/// scales with the cell count, halo traffic with face areas.
pub fn smg2000(n: usize, size: u32) -> Workload {
    let (px, py) = grid2d(n);
    // Larger problems run more V-cycles (the real code's convergence work
    // grows with the grid), which keeps the paper's case-time ratios.
    let cycles = 8 + size / 2;
    // size 60 -> ~8 reference-seconds total compute; cubic in size.
    let total_comp = 24.0 * (size as f64 / 60.0).powi(3) + 3.0;
    let face_bytes = ((size as u64 * size as u64 * 8) / n as u64).max(128);
    let per_cycle = total_comp / cycles as f64 / n as f64;
    // Bigger grids need more multigrid levels, so per-cycle communication
    // volume grows with problem size (this is what makes the larger smg
    // cases *more* mapping-sensitive, as in the paper's table 3).
    let levels = (2 + size / 20).min(6);
    let mut p = Program::new(n);
    for _ in 0..cycles {
        for level in 0..levels {
            let b = (face_bytes >> (2 * level)).max(64);
            compute_all(&mut p, per_cycle * 0.3 / 2f64.powi(level as i32));
            halo2d(&mut p, px, py, b);
        }
        allreduce(&mut p, 64);
    }
    Workload::new(
        format!("smg2000.{size}.{n}"),
        p,
        "ASCI smg2000: semicoarsening multigrid with level-scaled halos",
    )
}

/// SAMRAI: structured AMR framework. Irregular refinement produces an
/// effectively all-to-all, size-varying pattern — another "uncertain
/// speedup" case in the paper.
pub fn samrai(n: usize) -> Workload {
    let iters = 18u32;
    let mut p = Program::new(n);
    for it in 0..iters {
        compute_all(&mut p, 0.5 / iters as f64);
        // Deterministic pseudo-irregular sizes per (round, pair).
        for s in 1..n {
            for r in 0..n {
                let to = (r + s) % n;
                let from = (r + n - s) % n;
                let bytes = 256 + ((r * 2654435761 + s * 40503 + it as usize * 97) % 1792) as u64;
                p.push(r, Op::SendRecv { to, bytes, from });
            }
        }
    }
    Workload::new(
        format!("samrai.{n}"),
        p,
        "ASCI SAMRAI: adaptive mesh refinement, irregular all-to-all",
    )
}

/// Towhee: Monte-Carlo molecular simulation — embarrassingly parallel with
/// negligible communication (the paper's third "uncertain speedup" case).
pub fn towhee(n: usize) -> Workload {
    let mut p = Program::new(n);
    for _ in 0..6 {
        // Per-rank work is constant: more ranks = more samples, not faster.
        compute_all(&mut p, 1.8 / 6.0);
    }
    allreduce(&mut p, 128);
    Workload::new(
        format!("towhee.{n}"),
        p,
        "ASCI Towhee: Monte Carlo molecular simulation, embarrassingly parallel",
    )
}

/// Aztec: iterative sparse solver (Poisson problem) — many short halo
/// exchanges plus a dot-product all-reduce per iteration. The paper's most
/// communication-sensitive case (10.8 % best-vs-worst speedup).
pub fn aztec(n: usize) -> Workload {
    let (px, py) = grid2d(n);
    let iters = 120u32;
    let total_comp = 16.0;
    let per_iter = total_comp / iters as f64 / n as f64;
    let mut p = Program::new(n);
    for _ in 0..iters {
        compute_all(&mut p, per_iter);
        halo2d(&mut p, px, py, 4096);
        allreduce(&mut p, 8);
    }
    Workload::new(
        format!("aztec.{n}"),
        p,
        "ASCI Aztec: iterative Poisson solver, halo + reduction per iteration",
    )
}

/// An *irregular* application (the paper's closing future-work target:
/// "applications with irregular computation and/or communication
/// patterns"): per-rank computation is deterministically imbalanced and the
/// sparse communication graph varies per rank — some ranks are hubs, some
/// nearly silent.
pub fn irregular(n: usize, seed: u64) -> Workload {
    let iters = 24u32;
    let mut p = Program::new(n);
    // Cheap deterministic per-(rank, iter) hash, no RNG state needed.
    let h = |a: u64, b: u64| -> u64 {
        let mut x = a
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(b)
            .wrapping_add(seed);
        x ^= x >> 31;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^ (x >> 29)
    };
    for it in 0..iters as u64 {
        // Imbalanced compute: rank r persistently does 1x..3x the base
        // work, with small per-iteration jitter on top.
        for r in 0..n {
            let persistent = 1.0 + 2.0 * (h(r as u64, 0) % 1000) as f64 / 1000.0;
            let jitter = 0.9 + 0.2 * (h(r as u64, it + 1) % 1000) as f64 / 1000.0;
            let skew = persistent * jitter;
            p.push(
                r,
                Op::Compute {
                    seconds: 0.02 * skew / n as f64 * 8.0,
                },
            );
        }
        // Sparse exchanges: each rank talks to one hashed partner per
        // iteration (symmetric pairing so sends match receives).
        for r in 0..n {
            let partner = (r + 1 + (h(it, r as u64) % (n as u64 - 1)) as usize) % n;
            // Only the lexicographically smaller side initiates the
            // symmetric exchange to avoid duplicate postings.
            if r < partner {
                let bytes = 256 + (h(r as u64 ^ it, partner as u64) % 8192);
                p.push(
                    r,
                    Op::SendRecv {
                        to: partner,
                        bytes,
                        from: partner,
                    },
                );
                p.push(
                    partner,
                    Op::SendRecv {
                        to: r,
                        bytes,
                        from: r,
                    },
                );
            }
        }
        if it % 6 == 5 {
            allreduce(&mut p, 64);
        }
    }
    Workload::new(
        format!("irregular.{seed}.{n}"),
        p,
        "irregular application: imbalanced compute, sparse shifting pattern",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbes_cluster::load::LoadState;
    use cbes_cluster::presets::two_switch_demo;
    use cbes_cluster::NodeId;
    use cbes_mpisim::{simulate, SimConfig, SimResult};

    fn run(w: &Workload) -> SimResult {
        let c = two_switch_demo();
        let mapping: Vec<NodeId> = (0..w.num_ranks() as u32).map(NodeId).collect();
        simulate(
            &c,
            &w.program,
            &mapping,
            &LoadState::idle(c.len()),
            &SimConfig::default().noiseless(),
        )
        .unwrap_or_else(|e| panic!("{} failed: {e}", w.name))
    }

    fn comm_share(r: &SimResult) -> f64 {
        let b: f64 = r.stats.iter().map(|s| s.b).sum();
        let x: f64 = r.stats.iter().map(|s| s.x + s.o).sum();
        b / (b + x)
    }

    #[test]
    fn all_asci_codes_complete() {
        for w in [sweep3d(6), smg2000(6, 12), samrai(6), towhee(6), aztec(6)] {
            assert!(run(&w).wall_time > 0.0, "{}", w.name);
        }
    }

    /// Homogeneous mapping (Orange Grove Alphas): blocked time measures
    /// communication, not architecture imbalance.
    fn run_homogeneous(w: &Workload) -> SimResult {
        let c = cbes_cluster::presets::orange_grove();
        let mapping: Vec<NodeId> = (0..w.num_ranks() as u32).map(NodeId).collect();
        simulate(
            &c,
            &w.program,
            &mapping,
            &LoadState::idle(c.len()),
            &SimConfig::default().noiseless(),
        )
        .unwrap_or_else(|e| panic!("{} failed: {e}", w.name))
    }

    #[test]
    fn towhee_is_embarrassingly_parallel() {
        let r = run_homogeneous(&towhee(8));
        assert!(comm_share(&r) < 0.02, "towhee comm {}", comm_share(&r));
    }

    #[test]
    fn aztec_is_communication_sensitive() {
        let r = run_homogeneous(&aztec(8));
        assert!(comm_share(&r) > 0.15, "aztec comm {}", comm_share(&r));
    }

    #[test]
    fn smg_cases_scale_with_problem_size() {
        let t12 = run(&smg2000(8, 12)).wall_time;
        let t50 = run(&smg2000(8, 50)).wall_time;
        let t60 = run(&smg2000(8, 60)).wall_time;
        assert!(t12 < t50 && t50 < t60, "{t12} {t50} {t60}");
        // Paper shape: 16.6 : 67 : 114 ≈ 1 : 4 : 6.9.
        assert!(t60 / t12 > 3.0, "ratio {}", t60 / t12);
    }

    #[test]
    fn irregular_runs_and_shows_imbalance() {
        let w = irregular(8, 7);
        let r = run_homogeneous(&w);
        assert!(r.wall_time > 0.0);
        // Computation is imbalanced across ranks by construction.
        let xs: Vec<f64> = r.stats.iter().map(|s| s.x).collect();
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(0.0f64, f64::max);
        assert!(max > 1.2 * min, "imbalance expected: {xs:?}");
    }

    #[test]
    fn irregular_varies_with_seed_but_is_deterministic() {
        assert_eq!(irregular(6, 1), irregular(6, 1));
        assert_ne!(irregular(6, 1).program, irregular(6, 2).program);
    }

    #[test]
    fn samrai_touches_every_pair() {
        let w = samrai(5);
        let mut pairs = std::collections::BTreeSet::new();
        for (r, ops) in w.program.procs.iter().enumerate() {
            for op in ops {
                if let Op::SendRecv { to, .. } = op {
                    pairs.insert((r, *to));
                }
            }
        }
        assert_eq!(pairs.len(), 5 * 4, "all ordered pairs must communicate");
    }
}
