//! NAS Parallel Benchmarks 2.4 stand-ins (paper §5 phase 2 and §6.1).
//!
//! Each generator reproduces the documented communication *pattern* and
//! comp:comm character of the original kernel, at a virtual time scale (a
//! few simulated seconds instead of minutes). The workload split across
//! ranks follows the real codes: total work is fixed per class and divided
//! among processes.

use crate::patterns::{allreduce, alltoall, compute_all, grid2d, halo2d};
use crate::Workload;
use cbes_mpisim::{Op, Program};

/// NPB problem classes used by the paper (S = tiny, A, B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NpbClass {
    /// Sample (tiny) class — used by unit tests and BT-S.
    S,
    /// Class A.
    A,
    /// Class B.
    B,
}

impl NpbClass {
    /// Work multiplier relative to class A.
    fn work(&self) -> f64 {
        match self {
            NpbClass::S => 0.1,
            NpbClass::A => 1.0,
            NpbClass::B => 2.5,
        }
    }

    /// Iteration-count multiplier relative to class A.
    fn iters(&self, base: u32) -> u32 {
        let f = match self {
            NpbClass::S => 0.25,
            NpbClass::A => 1.0,
            NpbClass::B => 1.5,
        };
        ((base as f64 * f) as u32).max(2)
    }

    /// Message-size multiplier relative to class A.
    fn bytes(&self, base: u64) -> u64 {
        let f = match self {
            NpbClass::S => 0.35,
            NpbClass::A => 1.0,
            NpbClass::B => 1.6,
        };
        ((base as f64 * f) as u64).max(64)
    }

    /// Class letter for workload names.
    pub fn letter(&self) -> char {
        match self {
            NpbClass::S => 'S',
            NpbClass::A => 'A',
            NpbClass::B => 'B',
        }
    }
}

/// One down-sweep (or up-sweep) of the LU pipelined wavefront on a
/// `(px, py)` grid: each rank receives from its upstream neighbours,
/// computes, and forwards downstream (reversed for up-sweeps).
///
/// `planes` models the k-plane pipelining of the real SSOR solver: the
/// sweep is split into `planes` consecutive wavefronts, so only the first
/// plane pays the full corner-to-corner pipeline-fill bubble and the rest
/// stream through — this is what keeps LU ~80/20 comp:comm.
fn wavefront(
    prog: &mut Program,
    px: usize,
    py: usize,
    bytes: u64,
    comp: f64,
    planes: usize,
    reverse: bool,
) {
    let at = |x: usize, y: usize| y * px + x;
    // Down-sweep (d = +1) flows from (0,0) towards (px-1, py-1); the
    // up-sweep (d = -1) flows back from the far corner.
    let d: i64 = if reverse { -1 } else { 1 };
    let neighbour = |x: usize, y: usize, dx: i64, dy: i64| -> Option<usize> {
        let nx = x as i64 + dx;
        let ny = y as i64 + dy;
        (nx >= 0 && ny >= 0 && (nx as usize) < px && (ny as usize) < py)
            .then(|| at(nx as usize, ny as usize))
    };
    let planes = planes.max(1);
    let cell = comp / planes as f64;
    for y in 0..py {
        for x in 0..px {
            let r = at(x, y);
            for _ in 0..planes {
                if let Some(up) = neighbour(x, y, -d, 0) {
                    prog.push(r, Op::Recv { from: up });
                }
                if let Some(up) = neighbour(x, y, 0, -d) {
                    prog.push(r, Op::Recv { from: up });
                }
                if cell > 0.0 {
                    prog.push(r, Op::Compute { seconds: cell });
                }
                if let Some(down) = neighbour(x, y, d, 0) {
                    prog.push(r, Op::Send { to: down, bytes });
                }
                if let Some(down) = neighbour(x, y, 0, d) {
                    prog.push(r, Op::Send { to: down, bytes });
                }
            }
        }
    }
}

/// LU: the pipelined wavefront CFD solver (SSOR). Lower and upper
/// triangular sweeps per iteration plus boundary halo exchanges and a
/// periodic residual all-reduce. Roughly 80 % compute / 20 % communication
/// at 8 ranks — the workhorse of the paper's §6.1 experiments.
pub fn lu(n: usize, class: NpbClass) -> Workload {
    let (px, py) = grid2d(n);
    let iters = class.iters(60);
    let bytes = class.bytes((8_000 / n as u64).max(512));
    let planes = 10;
    let total_comp = 64.0 * class.work();
    let per_iter = total_comp / iters as f64 / n as f64;
    let mut p = Program::new(n);
    for it in 0..iters {
        wavefront(&mut p, px, py, bytes, per_iter * 0.4, planes, false);
        wavefront(&mut p, px, py, bytes, per_iter * 0.4, planes, true);
        compute_all(&mut p, per_iter * 0.2);
        halo2d(&mut p, px, py, bytes * 2);
        if it % 8 == 7 {
            allreduce(&mut p, 64);
        }
    }
    Workload::new(
        format!("lu.{}.{}", class.letter(), n),
        p,
        "NPB LU: pipelined wavefront SSOR solver",
    )
}

/// BT: block-tridiagonal multi-partition solver — coarse-grained halo
/// exchanges with large faces, fewer iterations.
pub fn bt(n: usize, class: NpbClass) -> Workload {
    let (px, py) = grid2d(n);
    let iters = class.iters(8);
    let bytes = class.bytes((160_000 / n as u64).max(4096));
    let total_comp = 48.0 * class.work();
    let per_iter = total_comp / iters as f64 / n as f64;
    let mut p = Program::new(n);
    for _ in 0..iters {
        for _ in 0..3 {
            compute_all(&mut p, per_iter / 3.0);
            halo2d(&mut p, px, py, bytes);
        }
        allreduce(&mut p, 64);
    }
    Workload::new(
        format!("bt.{}.{}", class.letter(), n),
        p,
        "NPB BT: multi-partition block-tridiagonal solver",
    )
}

/// SP: scalar-pentadiagonal solver — the same multi-partition structure as
/// BT but finer-grained (more iterations, smaller messages).
pub fn sp(n: usize, class: NpbClass) -> Workload {
    let (px, py) = grid2d(n);
    let iters = class.iters(14);
    let bytes = class.bytes((48_000 / n as u64).max(2048));
    let total_comp = 40.0 * class.work();
    let per_iter = total_comp / iters as f64 / n as f64;
    let mut p = Program::new(n);
    for _ in 0..iters {
        for _ in 0..3 {
            compute_all(&mut p, per_iter / 3.0);
            halo2d(&mut p, px, py, bytes);
        }
        allreduce(&mut p, 64);
    }
    Workload::new(
        format!("sp.{}.{}", class.letter(), n),
        p,
        "NPB SP: multi-partition scalar-pentadiagonal solver",
    )
}

/// MG: V-cycle multigrid — halo exchanges whose message size shrinks at
/// each coarser level, plus a residual all-reduce per cycle.
pub fn mg(n: usize, class: NpbClass) -> Workload {
    let (px, py) = grid2d(n);
    let cycles = class.iters(20);
    let fine_bytes = class.bytes((130_000 / n as u64).max(4096));
    let total_comp = 28.0 * class.work();
    let per_cycle = total_comp / cycles as f64 / n as f64;
    let mut p = Program::new(n);
    for _ in 0..cycles {
        // Down the V: fine -> coarse.
        for level in 0..3u32 {
            let b = (fine_bytes >> (2 * level)).max(64);
            compute_all(&mut p, per_cycle * 0.25 / 4f64.powi(level as i32));
            halo2d(&mut p, px, py, b);
        }
        // Up the V: coarse -> fine.
        for level in (0..3u32).rev() {
            let b = (fine_bytes >> (2 * level)).max(64);
            compute_all(&mut p, per_cycle * 0.25 / 4f64.powi(level as i32));
            halo2d(&mut p, px, py, b);
        }
        allreduce(&mut p, 64);
    }
    Workload::new(
        format!("mg.{}.{}", class.letter(), n),
        p,
        "NPB MG: semicoarsening V-cycle multigrid",
    )
}

/// CG: conjugate gradient — transpose-style exchanges with a distant
/// partner plus two dot-product all-reduces per iteration.
pub fn cg(n: usize, class: NpbClass) -> Workload {
    let iters = class.iters(50);
    let bytes = class.bytes((56_000 / n as u64).max(2048));
    let total_comp = 24.0 * class.work();
    let per_iter = total_comp / iters as f64 / n as f64;
    let mut p = Program::new(n);
    for _ in 0..iters {
        compute_all(&mut p, per_iter);
        if n >= 2 {
            for r in 0..n {
                // Transpose partner: reflection, which is an involution for
                // any n (the middle rank of an odd n sits the round out).
                let partner = n - 1 - r;
                if partner != r {
                    p.push(
                        r,
                        Op::SendRecv {
                            to: partner,
                            bytes,
                            from: partner,
                        },
                    );
                }
            }
        }
        allreduce(&mut p, 8);
        allreduce(&mut p, 8);
    }
    Workload::new(
        format!("cg.{}.{}", class.letter(), n),
        p,
        "NPB CG: conjugate gradient with transpose exchanges",
    )
}

/// IS: integer sort — bucket redistribution (all-to-all) dominates; very
/// little computation. The most communication-bound NPB kernel.
pub fn is(n: usize, class: NpbClass) -> Workload {
    let iters = class.iters(10);
    let bytes = class.bytes((260_000 / (n as u64 * n as u64)).max(512));
    let total_comp = 0.8 * class.work();
    let per_iter = total_comp / iters as f64 / n as f64;
    let mut p = Program::new(n);
    for _ in 0..iters {
        compute_all(&mut p, per_iter);
        alltoall(&mut p, bytes);
        allreduce(&mut p, 64);
    }
    Workload::new(
        format!("is.{}.{}", class.letter(), n),
        p,
        "NPB IS: integer sort, all-to-all bucket redistribution",
    )
}

/// EP: embarrassingly parallel — pure computation with one final
/// reduction.
pub fn ep(n: usize, class: NpbClass) -> Workload {
    let total_comp = 22.0 * class.work();
    let mut p = Program::new(n);
    // Chunked so noise applies realistically.
    for _ in 0..8 {
        compute_all(&mut p, total_comp / 8.0 / n as f64);
    }
    allreduce(&mut p, 128);
    Workload::new(
        format!("ep.{}.{}", class.letter(), n),
        p,
        "NPB EP: embarrassingly parallel random-number kernel",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbes_cluster::load::LoadState;
    use cbes_cluster::presets::two_switch_demo;
    use cbes_cluster::NodeId;
    use cbes_mpisim::{simulate, SimConfig, SimResult};

    fn run(w: &Workload) -> SimResult {
        let c = two_switch_demo();
        let mapping: Vec<NodeId> = (0..w.num_ranks() as u32).map(NodeId).collect();
        simulate(
            &c,
            &w.program,
            &mapping,
            &LoadState::idle(c.len()),
            &SimConfig::default().noiseless(),
        )
        .unwrap_or_else(|e| panic!("{} failed: {e}", w.name))
    }

    /// Run on homogeneous nodes (Orange Grove's 8 Alphas) so blocked time
    /// measures communication, not speed imbalance between architectures.
    fn run_homogeneous(w: &Workload) -> SimResult {
        let c = cbes_cluster::presets::orange_grove();
        let mapping: Vec<NodeId> = (0..w.num_ranks() as u32).map(NodeId).collect();
        simulate(
            &c,
            &w.program,
            &mapping,
            &LoadState::idle(c.len()),
            &SimConfig::default().noiseless(),
        )
        .unwrap_or_else(|e| panic!("{} failed: {e}", w.name))
    }

    fn comm_share(r: &SimResult) -> f64 {
        let b: f64 = r.stats.iter().map(|s| s.b).sum();
        let x: f64 = r.stats.iter().map(|s| s.x + s.o).sum();
        b / (b + x)
    }

    #[test]
    fn all_kernels_complete_on_8_ranks() {
        for w in [
            lu(8, NpbClass::S),
            bt(8, NpbClass::S),
            sp(8, NpbClass::S),
            mg(8, NpbClass::S),
            cg(8, NpbClass::S),
            is(8, NpbClass::S),
            ep(8, NpbClass::S),
        ] {
            let r = run(&w);
            assert!(r.wall_time > 0.0, "{}", w.name);
        }
    }

    #[test]
    fn kernels_handle_odd_rank_counts() {
        for w in [lu(6, NpbClass::S), cg(5, NpbClass::S), is(3, NpbClass::S)] {
            assert!(run(&w).wall_time > 0.0, "{}", w.name);
        }
    }

    #[test]
    fn ep_is_compute_dominated_and_is_is_comm_dominated() {
        let ep_r = run_homogeneous(&ep(8, NpbClass::A));
        let is_r = run_homogeneous(&is(8, NpbClass::A));
        assert!(comm_share(&ep_r) < 0.05, "EP comm {}", comm_share(&ep_r));
        assert!(comm_share(&is_r) > 0.3, "IS comm {}", comm_share(&is_r));
    }

    #[test]
    fn lu_has_the_papers_comp_comm_character() {
        let r = run_homogeneous(&lu(8, NpbClass::A));
        let share = comm_share(&r);
        // Paper quotes ~80/20 comp:comm for the LU(2) case.
        assert!(
            (0.15..=0.45).contains(&share),
            "LU comm share {share} out of band"
        );
    }

    #[test]
    fn class_b_is_bigger_than_class_a() {
        let a = run(&lu(8, NpbClass::A)).wall_time;
        let b = run(&lu(8, NpbClass::B)).wall_time;
        assert!(b > 1.5 * a, "A={a} B={b}");
    }

    #[test]
    fn classes_have_letters() {
        assert_eq!(NpbClass::S.letter(), 'S');
        assert_eq!(lu(4, NpbClass::B).name, "lu.B.4");
    }

    #[test]
    fn wavefront_pipelines_in_both_directions() {
        let mut p = Program::new(4);
        wavefront(&mut p, 2, 2, 1024, 0.001, 4, false);
        wavefront(&mut p, 2, 2, 1024, 0.001, 4, true);
        assert_eq!(p.validate(), Ok(()));
        let w = Workload::new("wf".into(), p, "test");
        assert!(run(&w).wall_time > 0.0);
    }
}
