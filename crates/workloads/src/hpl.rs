//! High-Performance Linpack stand-in: right-looking LU factorisation with
//! panel broadcasts and a trailing-matrix update that shrinks as the
//! factorisation proceeds.

use crate::patterns::{allreduce, bcast, compute_all, ring};
use crate::Workload;
use cbes_mpisim::Program;

/// HPL with matrix dimension `size` on `n` ranks.
///
/// The paper's three cases: `hpl(n, 500)` (HPL(1) — so short that scheduling
/// gains are uncertain), `hpl(n, 5_000)` (HPL(2)), `hpl(n, 10_000)` (HPL(3)).
///
/// Total computation scales as `size³`, panel traffic as `size²`; both are
/// divided across ranks. 16 factorisation steps model the block loop.
pub fn hpl(n: usize, size: u64) -> Workload {
    let steps = 28u32;
    // size = 10_000 -> ~12 reference-seconds of total compute.
    let total_comp = 12.0 * (size as f64 / 10_000.0).powi(3);
    let panel_bytes = ((size * 40) / n as u64).max(512);
    let mut p = Program::new(n);
    for k in 0..steps {
        // Trailing update shrinks quadratically with progress.
        let remain = 1.0 - k as f64 / steps as f64;
        let step_comp = total_comp * remain * remain;
        // Panel broadcast from the step's owner column.
        let root = (k as usize) % n;
        bcast(&mut p, root, panel_bytes);
        // Row swaps circulate pivot rows.
        ring(&mut p, (panel_bytes / 4).max(256));
        // Divide by Σ r² (= norm·steps) so per-step weights sum to 1, then
        // split across ranks.
        compute_all(&mut p, step_comp / (norm(steps) * steps as f64) / n as f64);
    }
    allreduce(&mut p, 64); // final residual check
    Workload::new(
        format!("hpl.{size}.{n}"),
        p,
        "HPL: panel-broadcast LU factorisation with shrinking trailing update",
    )
}

/// Normalisation so that the per-step quadratic weights sum to `steps`,
/// keeping `total_comp` the actual total.
fn norm(steps: u32) -> f64 {
    let s: f64 = (0..steps)
        .map(|k| {
            let r = 1.0 - k as f64 / steps as f64;
            r * r
        })
        .sum();
    s / steps as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbes_cluster::load::LoadState;
    use cbes_cluster::presets::two_switch_demo;
    use cbes_cluster::NodeId;
    use cbes_mpisim::{simulate, SimConfig};

    fn wall(w: &Workload) -> f64 {
        let c = two_switch_demo();
        let mapping: Vec<NodeId> = (0..w.num_ranks() as u32).map(NodeId).collect();
        simulate(
            &c,
            &w.program,
            &mapping,
            &LoadState::idle(c.len()),
            &SimConfig::default().noiseless(),
        )
        .unwrap()
        .wall_time
    }

    #[test]
    fn problem_size_dominates_runtime() {
        let small = wall(&hpl(8, 500));
        let big = wall(&hpl(8, 10_000));
        assert!(big > 10.0 * small, "small={small} big={big}");
    }

    #[test]
    fn tiny_problem_is_communication_bound() {
        let c = two_switch_demo();
        let w = hpl(8, 500);
        let mapping: Vec<NodeId> = (0..8).map(NodeId).collect();
        let r = simulate(
            &c,
            &w.program,
            &mapping,
            &LoadState::idle(c.len()),
            &SimConfig::default().noiseless(),
        )
        .unwrap();
        let b: f64 = r.stats.iter().map(|s| s.b).sum();
        let x: f64 = r.stats.iter().map(|s| s.x).sum();
        assert!(b > x, "HPL(500) should be comm-bound: b={b} x={x}");
    }

    #[test]
    fn workload_names_encode_problem_size() {
        assert_eq!(hpl(4, 5000).name, "hpl.5000.4");
    }

    #[test]
    fn compute_normalisation_sums_to_total() {
        // Sum of per-step compute = total_comp (within fp error).
        let steps = 28u32;
        let total = 12.0;
        let per: f64 = (0..steps)
            .map(|k| {
                let r = 1.0 - k as f64 / steps as f64;
                total * r * r / norm(steps) / steps as f64
            })
            .sum();
        assert!((per - total).abs() < 1e-9, "per={per}");
    }
}
