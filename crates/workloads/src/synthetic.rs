//! The configurable synthetic benchmark used by the paper's first
//! experimental phase (§5): a program tunable in computation/communication
//! overlap, communication granularity (CPU-bound vs. communication-bound),
//! and duration.

use crate::patterns;
use crate::Workload;
use cbes_mpisim::{Op, Program};

/// Communication topology of the synthetic benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynthPattern {
    /// Ring neighbour exchange.
    Ring,
    /// Fixed pairs: rank `2k` ↔ rank `2k+1`.
    Pairs,
    /// Pairwise-exchange all-to-all.
    AllToAll,
}

/// Parameters of one synthetic-benchmark instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticSpec {
    /// Number of processes.
    pub procs: usize,
    /// Outer iterations (duration knob).
    pub iters: u32,
    /// Computation per rank per iteration, reference seconds (granularity
    /// knob together with `msg_bytes`).
    pub comp_per_iter: f64,
    /// Messages each rank sends per iteration.
    pub msgs_per_iter: u32,
    /// Bytes per message.
    pub msg_bytes: u64,
    /// Fraction of per-iteration compute placed *between* posting sends and
    /// receiving (0 = no overlap, communication fully exposed; 1 = all
    /// compute overlaps the in-flight messages).
    pub overlap: f64,
    /// Communication topology.
    pub pattern: SynthPattern,
}

impl Default for SyntheticSpec {
    fn default() -> Self {
        SyntheticSpec {
            procs: 8,
            iters: 20,
            comp_per_iter: 0.01,
            msgs_per_iter: 4,
            msg_bytes: 4096,
            overlap: 0.0,
            pattern: SynthPattern::Ring,
        }
    }
}

impl SyntheticSpec {
    /// Build the benchmark program.
    ///
    /// Per iteration each rank posts its sends, computes the overlap share,
    /// receives, then computes the exposed share — so the `overlap` knob
    /// directly controls how much of the theoretical communication time is
    /// hidden (and therefore the profile's `λ`).
    pub fn build(&self) -> Workload {
        let n = self.procs;
        let mut p = Program::new(n);
        let overlap = self.overlap.clamp(0.0, 1.0);
        let during = self.comp_per_iter * overlap;
        let after = self.comp_per_iter * (1.0 - overlap);
        for _ in 0..self.iters {
            match self.pattern {
                SynthPattern::Ring => {
                    if n >= 2 {
                        for r in 0..n {
                            for _ in 0..self.msgs_per_iter {
                                p.push(
                                    r,
                                    Op::Send {
                                        to: (r + 1) % n,
                                        bytes: self.msg_bytes,
                                    },
                                );
                            }
                        }
                        if during > 0.0 {
                            patterns::compute_all(&mut p, during);
                        }
                        for r in 0..n {
                            for _ in 0..self.msgs_per_iter {
                                p.push(
                                    r,
                                    Op::Recv {
                                        from: (r + n - 1) % n,
                                    },
                                );
                            }
                        }
                    } else if self.comp_per_iter > 0.0 {
                        patterns::compute_all(&mut p, during);
                    }
                }
                SynthPattern::Pairs => {
                    for r in 0..n {
                        let peer = if r % 2 == 0 { r + 1 } else { r - 1 };
                        if peer < n {
                            for _ in 0..self.msgs_per_iter {
                                p.push(
                                    r,
                                    Op::Send {
                                        to: peer,
                                        bytes: self.msg_bytes,
                                    },
                                );
                            }
                        }
                    }
                    if during > 0.0 {
                        patterns::compute_all(&mut p, during);
                    }
                    for r in 0..n {
                        let peer = if r % 2 == 0 { r + 1 } else { r - 1 };
                        if peer < n {
                            for _ in 0..self.msgs_per_iter {
                                p.push(r, Op::Recv { from: peer });
                            }
                        }
                    }
                }
                SynthPattern::AllToAll => {
                    for _ in 0..self.msgs_per_iter {
                        patterns::alltoall(&mut p, self.msg_bytes);
                    }
                    if during > 0.0 {
                        patterns::compute_all(&mut p, during);
                    }
                }
            }
            if after > 0.0 {
                patterns::compute_all(&mut p, after);
            }
        }
        let name = format!(
            "synth.{:?}.n{}.i{}.m{}x{}.ov{:.2}",
            self.pattern, n, self.iters, self.msgs_per_iter, self.msg_bytes, overlap
        );
        Workload::new(
            name,
            p,
            "configurable synthetic benchmark (paper §5 phase 1)",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbes_cluster::load::LoadState;
    use cbes_cluster::presets::two_switch_demo;
    use cbes_cluster::NodeId;
    use cbes_mpisim::{simulate, SimConfig};

    fn wall(spec: &SyntheticSpec) -> f64 {
        let c = two_switch_demo();
        let w = spec.build();
        let mapping: Vec<NodeId> = (0..spec.procs as u32).map(NodeId).collect();
        simulate(
            &c,
            &w.program,
            &mapping,
            &LoadState::idle(c.len()),
            &SimConfig::default().noiseless(),
        )
        .unwrap()
        .wall_time
    }

    #[test]
    fn all_patterns_complete() {
        for pattern in [
            SynthPattern::Ring,
            SynthPattern::Pairs,
            SynthPattern::AllToAll,
        ] {
            let spec = SyntheticSpec {
                pattern,
                iters: 3,
                ..SyntheticSpec::default()
            };
            assert!(wall(&spec) > 0.0, "{pattern:?}");
        }
    }

    #[test]
    fn duration_scales_with_iterations() {
        let short = wall(&SyntheticSpec {
            iters: 5,
            ..SyntheticSpec::default()
        });
        let long = wall(&SyntheticSpec {
            iters: 20,
            ..SyntheticSpec::default()
        });
        // Roughly 4x, minus pipeline warm-up amortisation.
        let ratio = long / short;
        assert!((3.0..5.0).contains(&ratio), "short {short} long {long}");
    }

    #[test]
    fn overlap_reduces_wall_time_for_comm_heavy_runs() {
        // Moderate message volume: in-flight time is comparable to the
        // per-iteration compute, so hiding it behind compute pays off.
        let base = SyntheticSpec {
            procs: 4,
            iters: 10,
            comp_per_iter: 0.03,
            msgs_per_iter: 8,
            msg_bytes: 8 * 1024,
            ..SyntheticSpec::default()
        };
        let exposed = wall(&SyntheticSpec {
            overlap: 0.0,
            ..base
        });
        let hidden = wall(&SyntheticSpec {
            overlap: 1.0,
            ..base
        });
        assert!(
            hidden < exposed * 0.99,
            "overlap should hide communication: {hidden} !< {exposed}"
        );
    }

    #[test]
    fn granularity_shifts_comm_share() {
        // CPU-bound vs communication-bound instances, on the 4 homogeneous
        // Alpha nodes so wall time tracks nominal compute exactly.
        let cpu = SyntheticSpec {
            procs: 4,
            comp_per_iter: 0.1,
            msgs_per_iter: 1,
            msg_bytes: 256,
            ..SyntheticSpec::default()
        };
        let comm = SyntheticSpec {
            procs: 4,
            comp_per_iter: 0.0001,
            msgs_per_iter: 32,
            msg_bytes: 64 * 1024,
            ..SyntheticSpec::default()
        };
        // Wall time of the CPU-bound one tracks total compute; the
        // comm-bound one greatly exceeds its tiny compute budget.
        let wc = wall(&cpu);
        assert!((wc - 0.1 * 20.0).abs() / (0.1 * 20.0) < 0.1, "wc={wc}");
        let wm = wall(&comm);
        assert!(wm > 10.0 * (0.0001 * 20.0), "wm={wm}");
    }

    #[test]
    fn single_rank_degenerates_gracefully() {
        let spec = SyntheticSpec {
            procs: 1,
            iters: 2,
            ..SyntheticSpec::default()
        };
        let w = spec.build();
        assert_eq!(w.program.validate(), Ok(()));
    }
}
