//! A name-indexed registry of every workload generator — used by the CLI
//! and the experiment harness to construct workloads from strings.

use crate::npb::NpbClass;
use crate::{asci, hpl, npb, Workload};

/// Parameters a named workload may take.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuiteParams {
    /// Number of processes.
    pub ranks: usize,
    /// NPB class (defaults to A when unspecified).
    pub class: NpbClass,
    /// Problem size for HPL (matrix dimension) and smg2000 (grid edge).
    pub size: u64,
}

impl Default for SuiteParams {
    fn default() -> Self {
        SuiteParams {
            ranks: 8,
            class: NpbClass::A,
            size: 10_000,
        }
    }
}

/// The names [`by_name`] understands.
pub fn names() -> &'static [&'static str] {
    &[
        "is",
        "ep",
        "cg",
        "mg",
        "sp",
        "bt",
        "lu",
        "hpl",
        "sweep3d",
        "smg2000",
        "samrai",
        "towhee",
        "aztec",
        "irregular",
    ]
}

/// Build a workload by name. Returns `None` for unknown names.
pub fn by_name(name: &str, p: SuiteParams) -> Option<Workload> {
    let w = match name {
        "is" => npb::is(p.ranks, p.class),
        "ep" => npb::ep(p.ranks, p.class),
        "cg" => npb::cg(p.ranks, p.class),
        "mg" => npb::mg(p.ranks, p.class),
        "sp" => npb::sp(p.ranks, p.class),
        "bt" => npb::bt(p.ranks, p.class),
        "lu" => npb::lu(p.ranks, p.class),
        "hpl" => hpl::hpl(p.ranks, p.size),
        "sweep3d" => asci::sweep3d(p.ranks),
        "smg2000" => asci::smg2000(p.ranks, p.size.min(u32::MAX as u64) as u32),
        "samrai" => asci::samrai(p.ranks),
        "towhee" => asci::towhee(p.ranks),
        "aztec" => asci::aztec(p.ranks),
        "irregular" => asci::irregular(p.ranks, p.size),
        _ => return None,
    };
    Some(w)
}

/// Parse an NPB class letter (`S`/`A`/`B`, case-insensitive).
pub fn parse_class(s: &str) -> Option<NpbClass> {
    match s.to_ascii_uppercase().as_str() {
        "S" => Some(NpbClass::S),
        "A" => Some(NpbClass::A),
        "B" => Some(NpbClass::B),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_name_builds() {
        let p = SuiteParams {
            ranks: 4,
            class: NpbClass::S,
            size: 12,
        };
        for name in names() {
            let w = by_name(name, p).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(w.num_ranks(), 4, "{name}");
            assert_eq!(w.program.validate(), Ok(()), "{name}");
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("nope", SuiteParams::default()).is_none());
    }

    #[test]
    fn class_parsing() {
        assert_eq!(parse_class("a"), Some(NpbClass::A));
        assert_eq!(parse_class("S"), Some(NpbClass::S));
        assert_eq!(parse_class("b"), Some(NpbClass::B));
        assert_eq!(parse_class("x"), None);
    }

    #[test]
    fn hpl_uses_size_parameter() {
        let small = by_name(
            "hpl",
            SuiteParams {
                size: 500,
                ..Default::default()
            },
        )
        .unwrap();
        let big = by_name(
            "hpl",
            SuiteParams {
                size: 10_000,
                ..Default::default()
            },
        )
        .unwrap();
        assert_ne!(small.name, big.name);
    }
}
