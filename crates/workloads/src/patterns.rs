//! Reusable communication-pattern builders.
//!
//! Every builder appends a *collectively consistent* set of operations to
//! all ranks of a [`Program`] — matching sends and receives are always
//! generated together, so composed programs are deadlock-free by
//! construction (verified by the simulator tests).

use cbes_mpisim::{Op, Program};

/// Near-square factorisation of `n` into a 2-D process grid `(px, py)` with
/// `px ≤ py` and `px · py = n`.
pub fn grid2d(n: usize) -> (usize, usize) {
    assert!(n > 0, "grid of zero processes");
    let mut px = (n as f64).sqrt() as usize;
    while px > 1 && !n.is_multiple_of(px) {
        px -= 1;
    }
    (px.max(1), n / px.max(1))
}

/// Ring exchange: every rank sends `bytes` to its successor and receives
/// from its predecessor (one `SendRecv` per rank).
pub fn ring(prog: &mut Program, bytes: u64) {
    let n = prog.num_ranks();
    if n < 2 {
        return;
    }
    for r in 0..n {
        prog.push(
            r,
            Op::SendRecv {
                to: (r + 1) % n,
                bytes,
                from: (r + n - 1) % n,
            },
        );
    }
}

/// Four-direction halo exchange on a `(px, py)` grid (non-periodic): +x,
/// -x, +y, -y phases of `SendRecv`/`Send`/`Recv` pairs. Edge ranks skip the
/// missing neighbour.
pub fn halo2d(prog: &mut Program, px: usize, py: usize, bytes: u64) {
    let n = prog.num_ranks();
    assert_eq!(px * py, n, "grid must cover all ranks");
    let at = |x: usize, y: usize| y * px + x;
    // Two phases per axis so every op pairs up without deadlock: first
    // even-x send right, then odd-x send right, mirrored by receives.
    for y in 0..py {
        for x in 0..px {
            let r = at(x, y);
            let east = (x + 1 < px).then(|| at(x + 1, y));
            let west = (x > 0).then(|| at(x - 1, y));
            match (east, west) {
                (Some(e), Some(w)) => prog.push(
                    r,
                    Op::SendRecv {
                        to: e,
                        bytes,
                        from: w,
                    },
                ),
                (Some(e), None) => prog.push(r, Op::Send { to: e, bytes }),
                (None, Some(w)) => prog.push(r, Op::Recv { from: w }),
                (None, None) => {}
            }
            // Reverse direction.
            match (west, east) {
                (Some(w), Some(e)) => prog.push(
                    r,
                    Op::SendRecv {
                        to: w,
                        bytes,
                        from: e,
                    },
                ),
                (Some(w), None) => prog.push(r, Op::Send { to: w, bytes }),
                (None, Some(e)) => prog.push(r, Op::Recv { from: e }),
                (None, None) => {}
            }
        }
    }
    for y in 0..py {
        for x in 0..px {
            let r = at(x, y);
            let north = (y + 1 < py).then(|| at(x, y + 1));
            let south = (y > 0).then(|| at(x, y - 1));
            match (north, south) {
                (Some(nn), Some(s)) => prog.push(
                    r,
                    Op::SendRecv {
                        to: nn,
                        bytes,
                        from: s,
                    },
                ),
                (Some(nn), None) => prog.push(r, Op::Send { to: nn, bytes }),
                (None, Some(s)) => prog.push(r, Op::Recv { from: s }),
                (None, None) => {}
            }
            match (south, north) {
                (Some(s), Some(nn)) => prog.push(
                    r,
                    Op::SendRecv {
                        to: s,
                        bytes,
                        from: nn,
                    },
                ),
                (Some(s), None) => prog.push(r, Op::Send { to: s, bytes }),
                (None, Some(nn)) => prog.push(r, Op::Recv { from: nn }),
                (None, None) => {}
            }
        }
    }
}

/// Pairwise-exchange all-to-all: `n-1` rounds, in round `s` rank `r`
/// exchanges `bytes` with `(r + s) mod n` via `SendRecv`.
pub fn alltoall(prog: &mut Program, bytes: u64) {
    let n = prog.num_ranks();
    for s in 1..n {
        for r in 0..n {
            let to = (r + s) % n;
            let from = (r + n - s) % n;
            prog.push(r, Op::SendRecv { to, bytes, from });
        }
    }
}

/// Binomial-tree broadcast of `bytes` from `root`.
pub fn bcast(prog: &mut Program, root: usize, bytes: u64) {
    let n = prog.num_ranks();
    if n < 2 {
        return;
    }
    // Work in the rotated space where root = 0.
    let abs = |v: usize| (v + root) % n;
    let mut mask = 1usize;
    while mask < n {
        for v in 0..n {
            let r = abs(v);
            if v < mask && v + mask < n {
                prog.push(
                    r,
                    Op::Send {
                        to: abs(v + mask),
                        bytes,
                    },
                );
            } else if v >= mask && v < 2 * mask {
                prog.push(
                    r,
                    Op::Recv {
                        from: abs(v - mask),
                    },
                );
            }
        }
        mask <<= 1;
    }
}

/// Binomial-tree reduction of `bytes` to `root` (mirror of [`bcast`]).
pub fn reduce(prog: &mut Program, root: usize, bytes: u64) {
    let n = prog.num_ranks();
    if n < 2 {
        return;
    }
    let abs = |v: usize| (v + root) % n;
    // Highest power of two < 2n covering all ranks.
    let mut mask = 1usize;
    while mask < n {
        mask <<= 1;
    }
    mask >>= 1;
    while mask >= 1 {
        for v in 0..n {
            let r = abs(v);
            if v < mask && v + mask < n {
                prog.push(
                    r,
                    Op::Recv {
                        from: abs(v + mask),
                    },
                );
            } else if v >= mask && v < 2 * mask {
                prog.push(
                    r,
                    Op::Send {
                        to: abs(v - mask),
                        bytes,
                    },
                );
            }
        }
        mask >>= 1;
    }
}

/// All-reduce of `bytes`: reduction to rank 0 followed by broadcast.
pub fn allreduce(prog: &mut Program, bytes: u64) {
    reduce(prog, 0, bytes);
    bcast(prog, 0, bytes);
}

/// Append `seconds` of computation to every rank.
pub fn compute_all(prog: &mut Program, seconds: f64) {
    prog.push_all(Op::Compute { seconds });
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbes_cluster::load::LoadState;
    use cbes_cluster::presets::two_switch_demo;
    use cbes_cluster::NodeId;
    use cbes_mpisim::{simulate, SimConfig};

    fn run(prog: &Program) -> f64 {
        let c = two_switch_demo();
        let n = prog.num_ranks();
        let mapping: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        simulate(
            &c,
            prog,
            &mapping,
            &LoadState::idle(c.len()),
            &SimConfig::default().noiseless(),
        )
        .expect("pattern must be deadlock-free")
        .wall_time
    }

    #[test]
    fn grid2d_factorises_near_square() {
        assert_eq!(grid2d(1), (1, 1));
        assert_eq!(grid2d(8), (2, 4));
        assert_eq!(grid2d(16), (4, 4));
        assert_eq!(grid2d(121), (11, 11));
        assert_eq!(grid2d(7), (1, 7));
        assert_eq!(grid2d(128), (8, 16));
    }

    #[test]
    fn ring_runs_without_deadlock() {
        let mut p = Program::new(6);
        for _ in 0..5 {
            ring(&mut p, 2048);
        }
        assert!(run(&p) > 0.0);
    }

    #[test]
    fn halo2d_runs_without_deadlock() {
        let mut p = Program::new(8);
        let (px, py) = grid2d(8);
        for _ in 0..3 {
            halo2d(&mut p, px, py, 4096);
        }
        assert!(run(&p) > 0.0);
    }

    #[test]
    fn alltoall_exchanges_all_pairs() {
        let mut p = Program::new(5);
        alltoall(&mut p, 128);
        // Each rank sends n-1 = 4 messages.
        let (count, bytes) = p.message_totals();
        assert_eq!(count, 5 * 4);
        assert_eq!(bytes, 5 * 4 * 128);
        assert!(run(&p) > 0.0);
    }

    #[test]
    fn bcast_reaches_every_rank() {
        for n in [2usize, 3, 4, 7, 8] {
            for root in [0usize, 1, n - 1] {
                let mut p = Program::new(n);
                bcast(&mut p, root, 512);
                // Every non-root rank receives exactly once.
                for (r, ops) in p.procs.iter().enumerate() {
                    let recvs = ops.iter().filter(|o| matches!(o, Op::Recv { .. })).count();
                    assert_eq!(recvs, usize::from(r != root), "n={n} root={root} r={r}");
                }
                assert!(run(&p) > 0.0, "n={n} root={root}");
            }
        }
    }

    #[test]
    fn reduce_collects_from_every_rank() {
        for n in [2usize, 3, 5, 8] {
            let mut p = Program::new(n);
            reduce(&mut p, 0, 512);
            let sends: usize = p
                .procs
                .iter()
                .map(|ops| ops.iter().filter(|o| matches!(o, Op::Send { .. })).count())
                .sum();
            assert_eq!(sends, n - 1, "n={n}");
            assert!(run(&p) > 0.0, "n={n}");
        }
    }

    #[test]
    fn allreduce_composes_reduce_and_bcast() {
        let mut p = Program::new(6);
        allreduce(&mut p, 64);
        assert!(run(&p) > 0.0);
        let (count, _) = p.message_totals();
        assert_eq!(count, 2 * 5);
    }

    #[test]
    fn patterns_compose_into_one_program() {
        let mut p = Program::new(8);
        let (px, py) = grid2d(8);
        for _ in 0..3 {
            compute_all(&mut p, 0.01);
            halo2d(&mut p, px, py, 2048);
            allreduce(&mut p, 64);
            ring(&mut p, 1024);
            alltoall(&mut p, 256);
        }
        assert_eq!(p.validate(), Ok(()));
        assert!(run(&p) > 0.03);
    }
}
