//! Synthetic workload generators standing in for the paper's benchmark
//! programs.
//!
//! Each generator produces a [`cbes_mpisim::Program`] whose *communication
//! pattern*, *granularity* and *computation-to-communication ratio* match
//! the documented character of the original code:
//!
//! | paper code | module | pattern |
//! |---|---|---|
//! | NPB 2.4 IS/EP/CG/MG/SP/BT/LU | [`npb`] | all-to-all, none, transpose+reductions, multigrid halos, fine/coarse multi-partition halos, wavefront pipeline |
//! | HPL | [`hpl`] | panel broadcast + trailing update |
//! | sweep3d, smg2000, SAMRAI, Towhee, Aztec | [`asci`] | near-all-to-all, multigrid halos, irregular all-to-all, embarrassingly parallel, 2-D halo + reductions |
//! | phase-1 synthetic benchmark | [`synthetic`] | configurable overlap / granularity / duration |
//!
//! Simulated wall times are *virtual seconds* a couple of orders of
//! magnitude below the paper's real runtimes (the time axis is scaled down
//! so experiments run quickly); all ratios the experiments test are
//! preserved. See DESIGN.md §2 for the substitution rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asci;
pub mod hpl;
pub mod npb;
pub mod patterns;
pub mod suite;
pub mod synthetic;

pub use synthetic::{SynthPattern, SyntheticSpec};

use cbes_mpisim::Program;

/// A named, ready-to-simulate application.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Name, e.g. `"lu.A.8"`.
    pub name: String,
    /// The per-rank program.
    pub program: Program,
    /// One-line description of the pattern being modelled.
    pub description: &'static str,
}

impl Workload {
    /// Build a workload, asserting the program is well formed.
    pub fn new(name: String, program: Program, description: &'static str) -> Self {
        debug_assert_eq!(program.validate(), Ok(()), "workload {name} is malformed");
        Workload {
            name,
            program,
            description,
        }
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.program.num_ranks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbes_mpisim::Op;

    #[test]
    fn workload_carries_program() {
        let mut p = Program::new(2);
        p.push(0, Op::Compute { seconds: 1.0 });
        p.push(1, Op::Compute { seconds: 1.0 });
        let w = Workload::new("w".into(), p, "test");
        assert_eq!(w.num_ranks(), 2);
        assert_eq!(w.name, "w");
    }
}
