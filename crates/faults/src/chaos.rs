//! Chaos harness: run a phased application under a fault schedule and
//! check the resilience invariants.
//!
//! A chaos run executes the orchestrator twice over the same application,
//! pool, and load timeline — once fault-free as the baseline, once under
//! the given [`FaultSchedule`](crate::FaultSchedule) — and reduces both to
//! a [`ChaosReport`]. The report carries the two invariants the fault
//! model promises:
//!
//! 1. **No dead placements** — [`ChaosReport::down_assignments`] counts
//!    phase placements on nodes classified `Down` at scheduling time, and
//!    must be zero.
//! 2. **Bounded degradation** — [`ChaosReport::slowdown`] is the faulted
//!    completion time over the fault-free one; callers assert their own
//!    bound (the smoke tests use 2×).

use crate::FaultSchedule;
use cbes_cluster::load::LoadTimeline;
use cbes_cluster::{Cluster, LatencyProvider, NodeId};
use cbes_obs::{names, Registry};
use cbes_runtime::{Orchestrator, RunReport, RuntimeConfig, RuntimeError};

/// The outcome of one chaos run: the faulted execution next to its
/// fault-free baseline, plus the derived invariant figures.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The run under the fault schedule.
    pub faulted: RunReport,
    /// The same run with no faults injected.
    pub baseline: RunReport,
    /// `faulted.total / baseline.total`.
    pub slowdown: f64,
    /// Phase placements that landed on a node classified `Down` when that
    /// phase was scheduled. The orchestrator's health filter makes this 0;
    /// anything else is a resilience bug.
    pub down_assignments: usize,
}

impl ChaosReport {
    /// True when the run held both invariants: nothing was placed on a
    /// `Down` node and the slowdown stayed within `max_slowdown`.
    pub fn holds(&self, max_slowdown: f64) -> bool {
        self.down_assignments == 0 && self.slowdown <= max_slowdown
    }
}

fn down_assignments(report: &RunReport) -> usize {
    report
        .phases
        .iter()
        .map(|p| {
            p.mapping
                .iter()
                .filter(|(_, node)| p.down.contains(node))
                .count()
        })
        .sum()
}

/// Run `app` on `pool` twice — fault-free, then under `faults` — and
/// report both together. Bumps the process-wide `chaos.runs` counter.
///
/// The faulted run uses the orchestrator exactly as production would:
/// faults only reach it through masked monitoring reports and perturbed
/// load samples, never through a side channel.
#[allow(clippy::too_many_arguments)]
pub fn run_chaos(
    cluster: &Cluster,
    latency: &dyn LatencyProvider,
    config: RuntimeConfig,
    app: &cbes_runtime::PhasedApp,
    pool: &[NodeId],
    timeline: &LoadTimeline,
    faults: &FaultSchedule,
) -> Result<ChaosReport, RuntimeError> {
    Registry::global().counter(names::CHAOS_RUNS).incr();
    let orch = Orchestrator::new(cluster, latency, config);
    let baseline = orch.run(app, pool, timeline)?;
    let faulted = orch.run_with_faults(app, pool, timeline, Some(faults))?;
    let slowdown = if baseline.total > 0.0 {
        faulted.total / baseline.total
    } else {
        1.0
    };
    let down = down_assignments(&faulted);
    Ok(ChaosReport {
        faulted,
        baseline,
        slowdown,
        down_assignments: down,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultSchedule;
    use cbes_cluster::presets::orange_grove;
    use cbes_cluster::Architecture;
    use cbes_core::health::HealthPolicy;
    use cbes_core::remap::{MigrationCost, RemapAnalysis};
    use cbes_runtime::PhasedApp;
    use cbes_sched::SaConfig;
    use cbes_workloads::npb::{lu, NpbClass};

    fn two_phase_app(n: usize) -> PhasedApp {
        let w = lu(n, NpbClass::S);
        PhasedApp::new("lu2", vec![w.program.clone(), w.program])
    }

    fn chaos_config() -> RuntimeConfig {
        RuntimeConfig {
            sa: SaConfig::fast(3),
            remap: RemapAnalysis {
                cost: MigrationCost {
                    image_bytes: 1 << 20,
                    transfer_bw: 12.5e6,
                    restart_cost: 0.02,
                    coordination_cost: 0.02,
                },
                threshold: 0.1,
            },
            // Tight staleness deadlines: the boundary's oldest sweep
            // clamps to t=0, where every node still reports, so only the
            // newer sweeps see the crash.
            health: HealthPolicy {
                suspect_after: 0,
                down_after: 1,
                suspect_cost_factor: 2.0,
            },
            ..RuntimeConfig::default()
        }
    }

    /// Pool: the 8 Alphas (fastest, the initial mapping) plus 8 Intels to
    /// fail over onto.
    fn pool_and_victim(cluster: &Cluster) -> (Vec<NodeId>, usize) {
        let alphas = cluster.nodes_by_arch(Architecture::Alpha);
        let victim = alphas[0].index();
        let mut pool = alphas;
        pool.extend(cluster.nodes_by_arch(Architecture::IntelPII));
        (pool, victim)
    }

    #[test]
    fn standard_schedule_completes_within_bounds() {
        let cluster = orange_grove();
        let (pool, victim) = pool_and_victim(&cluster);
        let faults = FaultSchedule::standard(cluster.len(), victim);
        let report = run_chaos(
            &cluster,
            &cluster,
            chaos_config(),
            &two_phase_app(8),
            &pool,
            &LoadTimeline::idle(cluster.len()),
            &faults,
        )
        .expect("chaos run completes");
        assert_eq!(report.faulted.phases.len(), 2, "both phases executed");
        assert_eq!(
            report.down_assignments, 0,
            "no phase may run on a Down node: {report:?}"
        );
        assert!(
            report.slowdown <= 2.0,
            "slowdown {} exceeds the 2x bound (faulted {}s vs baseline {}s)",
            report.slowdown,
            report.faulted.total,
            report.baseline.total
        );
        assert!(report.holds(2.0));
        // The victim crashed after phase 0 started; phase 1 must have been
        // rescheduled off it.
        let victim_id = NodeId(victim as u32);
        assert!(
            !report.faulted.phases[1]
                .mapping
                .as_slice()
                .contains(&victim_id),
            "phase 1 still mapped on crashed node {victim_id}"
        );
        assert!(report.faulted.phases[1].down.contains(&victim_id));
        assert!(report.faulted.remaps >= 1, "crash must force a remap");
        assert!(report.faulted.health_transitions >= 1);
        // Fault-free baseline saw none of this.
        assert_eq!(report.baseline.remaps, 0);
        assert!(report.baseline.phases.iter().all(|p| p.down.is_empty()));
    }

    #[test]
    fn a_dropout_that_recovers_needs_no_remap_after_revival() {
        // Monitor dropout over phase boundary 1 only: node 4 goes silent
        // at t=0.5 and recovers well before the run would ever reach it
        // again. The run must still complete with bounded slowdown.
        let cluster = orange_grove();
        let (pool, _) = pool_and_victim(&cluster);
        let faults = FaultSchedule::new(cluster.len()).dropout(4, 0.5, 2.0);
        let report = run_chaos(
            &cluster,
            &cluster,
            chaos_config(),
            &two_phase_app(8),
            &pool,
            &LoadTimeline::idle(cluster.len()),
            &faults,
        )
        .expect("chaos run completes");
        assert_eq!(report.down_assignments, 0);
        assert!(report.slowdown <= 2.0, "{report:?}");
    }

    #[test]
    fn seeded_random_schedules_hold_the_no_down_placement_invariant() {
        // A handful of seeded schedules; completion is not guaranteed for
        // arbitrary chaos (a schedule may kill too many pool nodes, which
        // surfaces as a typed SchedulingFailed — never a panic), but any
        // run that completes must never have placed work on a Down node.
        let cluster = orange_grove();
        let (pool, _) = pool_and_victim(&cluster);
        let mut completed = 0;
        for seed in 0..6u64 {
            let faults = FaultSchedule::random(cluster.len(), seed, 8.0, 4);
            match run_chaos(
                &cluster,
                &cluster,
                chaos_config(),
                &two_phase_app(8),
                &pool,
                &LoadTimeline::idle(cluster.len()),
                &faults,
            ) {
                Ok(report) => {
                    completed += 1;
                    assert_eq!(report.down_assignments, 0, "seed {seed}: {report:?}");
                }
                Err(e) => {
                    // Typed degradation, not a crash.
                    let _ = e.to_string();
                }
            }
        }
        assert!(completed >= 1, "no seeded schedule completed at all");
    }
}
