//! Process-kill fail points for crash-safety testing.
//!
//! A fail point is a named call site on a durability-critical path
//! (e.g. each journal write in `cbes-reconfig`). Normally it is free:
//! one environment lookup, no clocks, no randomness — deterministic by
//! construction. When the `CBES_FAIL_POINT` environment variable names
//! the call site, reaching it hard-kills the process with
//! [`std::process::abort`], which (like `kill -9`) runs no destructors
//! and flushes no buffers. Crash-recovery tests re-exec themselves with
//! the variable set, let the child die at the chosen point, then assert
//! the survivor state recovers exactly.

/// Environment variable naming the fail point to trip.
pub const FAIL_POINT_ENV: &str = "CBES_FAIL_POINT";

/// Hard-kill the process if `CBES_FAIL_POINT` names this call site;
/// otherwise do nothing. The abort is deliberate and unclean — no
/// `Drop`, no stream flushing — so whatever the caller had made durable
/// before this line is exactly what a recovery sees.
pub fn fail_point(name: &str) {
    if let Ok(armed) = std::env::var(FAIL_POINT_ENV) {
        if armed == name {
            eprintln!("cbes-faults: fail point \"{name}\" tripped, aborting process");
            std::process::abort();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_fail_point_is_a_no_op() {
        // The test environment never arms this name; reaching the call
        // must fall straight through.
        fail_point("tests.never_armed");
    }
}
