//! Deterministic fault injection for the CBES runtime.
//!
//! The paper's premise is that "system conditions ... change" under the
//! service's feet (§2); this crate makes those changes *adversarial* and
//! *reproducible*. A [`FaultSchedule`] is a plain list of timed events —
//! node crashes, monitor dropouts, load bursts, latency spikes — built
//! either explicitly or from a seed, and implements the runtime's
//! [`Perturbation`] trait so the orchestrator can sample the active
//! disturbance at any simulated instant. The [`chaos`] module runs a full
//! orchestrated application under a schedule and checks the resilience
//! invariants (completion, no `Down`-node assignments, bounded slowdown).
//!
//! Everything is seeded and time-indexed: the same schedule produces the
//! same run, which is what makes chaos results debuggable and CI-stable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod failpoint;

pub use chaos::{run_chaos, ChaosReport};
pub use failpoint::{fail_point, FAIL_POINT_ENV};

use cbes_obs::{names, Registry};
use cbes_runtime::{Disturbance, Perturbation};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// What kind of fault an event injects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The node dies: it stops reporting *and* its ground-truth CPU
    /// availability collapses to the floor.
    Crash,
    /// The node's monitoring daemon goes silent but the node itself keeps
    /// running — the classic partial-failure the health tracker must not
    /// confuse with a crash forever (it ages to `Suspect`, then `Down`).
    MonitorDropout,
    /// External load lands on the node: ground-truth CPU availability is
    /// multiplied by the factor (< 1).
    LoadBurst(f64),
    /// Cluster-wide latency spike, modelled as extra NIC load everywhere
    /// (both the load adjuster and the simulator inflate message latency
    /// with NIC load). The `node` field of the event is ignored.
    LatencySpike(f64),
}

/// One timed fault: `kind` on `node`, active on the half-open window
/// `[start, end)` in simulated seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// The fault injected.
    pub kind: FaultKind,
    /// Target node index (ignored by [`FaultKind::LatencySpike`]).
    pub node: usize,
    /// Activation time, seconds.
    pub start: f64,
    /// Recovery time, seconds (`f64::INFINITY` = never recovers).
    pub end: f64,
}

impl FaultEvent {
    /// True when the event is active at time `t`.
    pub fn active_at(&self, t: f64) -> bool {
        t >= self.start && t < self.end
    }
}

/// A deterministic fault schedule over an `n`-node cluster.
///
/// Build one with the fluent constructors ([`FaultSchedule::crash`],
/// [`FaultSchedule::dropout`], ...), from a seed with
/// [`FaultSchedule::random`], or take the fixed
/// [`FaultSchedule::standard`] crash/recover scenario used by the chaos
/// smoke tests. Each injected event bumps the process-wide
/// `faults.injected` counter.
#[derive(Debug, Clone)]
pub struct FaultSchedule {
    n_nodes: usize,
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule over `n_nodes` (equivalent to
    /// [`cbes_runtime::NoFaults`]).
    pub fn new(n_nodes: usize) -> Self {
        FaultSchedule {
            n_nodes,
            events: Vec::new(),
        }
    }

    fn push(mut self, kind: FaultKind, node: usize, start: f64, end: f64) -> Self {
        assert!(
            node < self.n_nodes,
            "fault targets node {node} outside the cluster"
        );
        assert!(start < end, "fault window [{start}, {end}) is empty");
        Registry::global().counter(names::FAULTS_INJECTED).incr();
        self.events.push(FaultEvent {
            kind,
            node,
            start,
            end,
        });
        self
    }

    /// Crash `node` on `[start, end)`.
    pub fn crash(self, node: usize, start: f64, end: f64) -> Self {
        self.push(FaultKind::Crash, node, start, end)
    }

    /// Silence `node`'s monitor on `[start, end)` (the node keeps running).
    pub fn dropout(self, node: usize, start: f64, end: f64) -> Self {
        self.push(FaultKind::MonitorDropout, node, start, end)
    }

    /// Scale `node`'s ground-truth CPU availability by `factor` on
    /// `[start, end)`.
    pub fn load_burst(self, node: usize, factor: f64, start: f64, end: f64) -> Self {
        assert!(factor > 0.0, "load-burst factor must be positive");
        self.push(FaultKind::LoadBurst(factor), node, start, end)
    }

    /// Add `extra` NIC load cluster-wide on `[start, end)`.
    pub fn latency_spike(self, extra: f64, start: f64, end: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&extra),
            "extra NIC load must be in [0, 1)"
        );
        self.push(FaultKind::LatencySpike(extra), 0, start, end)
    }

    /// The standard crash/recover scenario the chaos smoke tests run:
    /// `victim` crashes at t=0.5 and stays dead for the bulk of the run,
    /// its neighbour's monitor drops out for a window (and comes back),
    /// and a brief latency spike passes through early on.
    pub fn standard(n_nodes: usize, victim: usize) -> Self {
        let neighbour = (victim + 1) % n_nodes;
        FaultSchedule::new(n_nodes)
            .crash(victim, 0.5, 1e6)
            .dropout(neighbour, 1.0, 3.0)
            .latency_spike(0.15, 0.2, 0.6)
    }

    /// A seeded random schedule: `events` faults with kinds, targets, and
    /// windows drawn deterministically from `seed`, all inside
    /// `[0, horizon)`. Same inputs, same schedule — always.
    pub fn random(n_nodes: usize, seed: u64, horizon: f64, events: usize) -> Self {
        assert!(n_nodes > 0 && horizon > 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut schedule = FaultSchedule::new(n_nodes);
        for _ in 0..events {
            let node = rng.random_range(0..n_nodes);
            let start = rng.random_range(0.0..horizon * 0.8);
            let end = start + rng.random_range(horizon * 0.05..horizon * 0.5);
            schedule = match rng.random_range(0u32..4) {
                0 => schedule.crash(node, start, end),
                1 => schedule.dropout(node, start, end),
                2 => schedule.load_burst(node, rng.random_range(0.2..0.9), start, end),
                _ => schedule.latency_spike(rng.random_range(0.05..0.4), start, end),
            };
        }
        schedule
    }

    /// The injected events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Cluster size the schedule was built for.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of events active at time `t`.
    pub fn active_at(&self, t: f64) -> usize {
        self.events.iter().filter(|e| e.active_at(t)).count()
    }
}

impl Perturbation for FaultSchedule {
    fn sample(&self, t: f64, n: usize) -> Disturbance {
        let mut d = Disturbance::none(n);
        for e in &self.events {
            if !e.active_at(t) {
                continue;
            }
            match e.kind {
                FaultKind::Crash => {
                    if e.node < n {
                        d.crashed[e.node] = true;
                    }
                }
                FaultKind::MonitorDropout => {
                    if e.node < n {
                        d.reporting[e.node] = false;
                    }
                }
                FaultKind::LoadBurst(factor) => {
                    if e.node < n {
                        d.cpu_scale[e.node] *= factor;
                    }
                }
                FaultKind::LatencySpike(extra) => {
                    d.extra_nic_load += extra;
                }
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbes_cluster::load::LoadState;
    use cbes_cluster::NodeId;

    #[test]
    fn windows_are_half_open_and_sampled_exactly() {
        let s = FaultSchedule::new(4).crash(2, 1.0, 3.0);
        assert!(s.sample(0.99, 4).is_none());
        let d = s.sample(1.0, 4);
        assert!(d.crashed[2]);
        assert_eq!(d.reported_mask(), vec![true, true, false, true]);
        assert!(s.sample(3.0, 4).is_none(), "recovered at end");
    }

    #[test]
    fn kinds_compose_into_one_disturbance() {
        let s = FaultSchedule::new(3)
            .dropout(0, 0.0, 10.0)
            .load_burst(1, 0.5, 0.0, 10.0)
            .load_burst(1, 0.5, 0.0, 10.0)
            .latency_spike(0.1, 0.0, 10.0)
            .latency_spike(0.2, 5.0, 10.0);
        let d = s.sample(6.0, 3);
        assert_eq!(d.reported_mask(), vec![false, true, true]);
        assert!((d.cpu_scale[1] - 0.25).abs() < 1e-12, "bursts stack");
        assert!((d.extra_nic_load - 0.3).abs() < 1e-12, "spikes stack");
        let mut load = LoadState::idle(3);
        d.apply_to(&mut load);
        assert!((load.cpu_avail(NodeId(1)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn random_schedules_are_reproducible_and_distinct() {
        let a = FaultSchedule::random(8, 7, 10.0, 5);
        let b = FaultSchedule::random(8, 7, 10.0, 5);
        let c = FaultSchedule::random(8, 8, 10.0, 5);
        assert_eq!(a.events(), b.events());
        assert_ne!(a.events(), c.events());
        assert_eq!(a.events().len(), 5);
        for e in a.events() {
            assert!(e.node < 8 && e.start < e.end);
        }
    }

    #[test]
    fn standard_schedule_has_the_advertised_shape() {
        let s = FaultSchedule::standard(8, 3);
        assert_eq!(s.events().len(), 3);
        assert!(matches!(s.events()[0].kind, FaultKind::Crash));
        assert_eq!(s.events()[0].node, 3);
        assert!(matches!(s.events()[1].kind, FaultKind::MonitorDropout));
        assert_eq!(s.events()[1].node, 4);
        // Early on: crash not yet active, spike is.
        let d = s.sample(0.3, 8);
        assert!(!d.crashed[3] && d.extra_nic_load > 0.0);
        // Mid-run: crash and dropout active.
        let d = s.sample(2.0, 8);
        assert!(d.crashed[3]);
        assert_eq!(
            d.reported_mask().iter().filter(|&&r| !r).count(),
            2,
            "victim (crashed) and neighbour (dropout) both silent"
        );
    }

    #[test]
    fn injected_faults_are_counted_globally() {
        let before = Registry::global().counter(names::FAULTS_INJECTED).get();
        let _ = FaultSchedule::random(4, 1, 5.0, 3);
        let after = Registry::global().counter(names::FAULTS_INJECTED).get();
        assert_eq!(after - before, 3);
    }

    mod properties {
        use super::*;
        use cbes_core::health::{HealthPolicy, HealthTracker, NodeHealth};
        use cbes_core::snapshot::SystemSnapshot;
        use cbes_sched::{
            GreedyScheduler, RandomScheduler, SaConfig, SaScheduler, ScheduleRequest, Scheduler,
        };
        use cbes_trace::{AppProfile, MessageGroup, ProcessProfile};
        use proptest::prelude::*;

        fn ring(n: usize) -> AppProfile {
            let procs = (0..n)
                .map(|rank| ProcessProfile {
                    rank,
                    x: 1.0,
                    o: 0.05,
                    b: 0.5,
                    sends: vec![MessageGroup {
                        peer: (rank + 1) % n,
                        bytes: 1024,
                        count: 10,
                    }],
                    recvs: vec![MessageGroup {
                        peer: (rank + n - 1) % n,
                        bytes: 1024,
                        count: 10,
                    }],
                    profile_speed: 1.0,
                    lambda: 1.0,
                })
                .collect();
            AppProfile {
                name: format!("ring.{n}"),
                procs,
                arch_ratios: Default::default(),
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Satellite requirement: under ANY seeded fault schedule, no
            /// scheduler ever assigns a process to a node the health
            /// tracker classifies `Down` at scheduling time.
            #[test]
            fn no_schedule_assigns_a_down_node(
                seed in 0u64..500,
                events in 1usize..7,
                sweeps in 3u64..12,
                at in 0.5f64..9.5,
            ) {
                let cluster = cbes_cluster::presets::two_switch_demo();
                let n = cluster.len();
                let faults = FaultSchedule::random(n, seed, 10.0, events);
                // Age the tracker with the report masks the schedule
                // produces around time `at` (one sweep per second).
                let policy = HealthPolicy { suspect_after: 1, down_after: 2, ..HealthPolicy::default() };
                let mut tracker = HealthTracker::new(n, policy);
                for s in 0..sweeps {
                    let t = (at - (sweeps - 1 - s) as f64).max(0.0);
                    tracker.record_sweep(&faults.sample(t, n).reported_mask());
                }
                let health = tracker.view();
                let down: Vec<_> = (0..n)
                    .filter(|&i| health.health(cbes_cluster::NodeId(i as u32)) == NodeHealth::Down)
                    .collect();
                let mut snap = SystemSnapshot::no_load(&cluster, &cluster);
                snap.set_health(health);

                let profile = ring(2);
                let pool: Vec<_> = cluster.node_ids().collect();
                let req = ScheduleRequest::new(&profile, &snap, &pool);
                prop_assume!(req.validate().is_ok());
                let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
                    Box::new(SaScheduler::new(SaConfig::fast(seed))),
                    Box::new(GreedyScheduler::new()),
                    Box::new(RandomScheduler::new(seed)),
                ];
                for sched in &mut schedulers {
                    let r = sched.schedule(&req).expect("schedulable");
                    for (_, node) in r.mapping.iter() {
                        prop_assert!(
                            !down.contains(&node.index()),
                            "{} assigned down node {node} (down set {down:?})",
                            sched.name()
                        );
                    }
                }
            }
        }
    }
}
