//! Stochastic perturbation of simulated durations.

use rand::rngs::StdRng;
use rand::RngExt;

/// Draws multiplicative noise factors `max(0.2, 1 + σ·z)`, `z ~ N(0, 1)`,
/// via Box–Muller (the floor keeps durations positive). With `σ = 0` the
/// factor is exactly 1 and no random numbers are consumed, so noiseless runs
/// are analytically exact.
#[derive(Debug)]
pub struct Noise {
    sigma: f64,
    /// Box–Muller produces pairs; cache the second draw.
    spare: Option<f64>,
}

impl Noise {
    /// A noise source with relative standard deviation `sigma`.
    pub fn new(sigma: f64) -> Self {
        Noise { sigma, spare: None }
    }

    /// Draw the next noise factor.
    pub fn factor(&mut self, rng: &mut StdRng) -> f64 {
        if self.sigma <= 0.0 {
            return 1.0;
        }
        let z = if let Some(z) = self.spare.take() {
            z
        } else {
            let u1: f64 = rng.random_range(f64::EPSILON..1.0);
            let u2: f64 = rng.random_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let (s, c) = (std::f64::consts::TAU * u2).sin_cos();
            self.spare = Some(r * s);
            r * c
        };
        (1.0 + self.sigma * z).max(0.2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zero_sigma_is_exactly_one_and_consumes_no_randomness() {
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        let mut n = Noise::new(0.0);
        for _ in 0..10 {
            assert_eq!(n.factor(&mut rng1), 1.0);
        }
        // rng1 untouched: same next value as rng2.
        let a: f64 = rng1.random_range(0.0..1.0);
        let b: f64 = rng2.random_range(0.0..1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn factors_center_on_one() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut n = Noise::new(0.05);
        let count = 40_000;
        let mean: f64 = (0..count).map(|_| n.factor(&mut rng)).sum::<f64>() / count as f64;
        assert!((mean - 1.0).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn factors_are_floored() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut n = Noise::new(3.0); // absurd sigma to hit the floor
        for _ in 0..1000 {
            assert!(n.factor(&mut rng) >= 0.2);
        }
    }

    #[test]
    fn spread_scales_with_sigma() {
        let mut rng = StdRng::seed_from_u64(17);
        let spread = |sigma: f64, rng: &mut StdRng| {
            let mut n = Noise::new(sigma);
            let xs: Vec<f64> = (0..5000).map(|_| n.factor(rng)).collect();
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
        };
        let s1 = spread(0.01, &mut rng);
        let s2 = spread(0.05, &mut rng);
        assert!(s2 > 3.0 * s1, "s1={s1} s2={s2}");
    }
}
