//! The discrete-event execution engine.
//!
//! A sequential DES in the classic "advance the minimum-clock runnable
//! process" style: at every step the rank whose next action starts earliest
//! (in virtual time) executes exactly one operation. This guarantees that
//! operations *start* in globally non-decreasing virtual-time order, which
//! keeps the link-contention accounting causal.

use crate::error::SimError;
use crate::noise::Noise;
use crate::program::{Op, Program};
use crate::SimConfig;
use cbes_cluster::load::LoadState;
use cbes_cluster::{Cluster, NodeId};
use cbes_trace::{RankTrace, Trace, TraceEvent};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// Per-rank accounting produced by a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RankStats {
    /// Own-code computation time (`X_i`).
    pub x: f64,
    /// Message-passing overhead (`O_i`).
    pub o: f64,
    /// Blocked time (`B_i`).
    pub b: f64,
    /// Completion time of the rank.
    pub end: f64,
}

/// The result of simulating one program run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// End-to-end execution time — the "measured" time of the experiments.
    pub wall_time: f64,
    /// Full execution trace (empty event streams when tracing is disabled).
    pub trace: Trace,
    /// Per-rank accounting, indexed by rank.
    pub stats: Vec<RankStats>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Status {
    Ready,
    /// Receive posted, waiting for a matching message; `since` is the time
    /// the wait started (overhead already paid).
    WaitRecv {
        from: usize,
        since: f64,
    },
    /// Arrived at a barrier at time `since`.
    WaitBarrier {
        since: f64,
    },
    Done,
}

struct ProcState {
    pc: usize,
    clock: f64,
    status: Status,
    stats: RankStats,
    events: Vec<TraceEvent>,
}

#[derive(Debug, Clone, Copy)]
struct Msg {
    arrival: f64,
    bytes: u64,
}

/// Pre-resolved per-rank-pair routing and load information.
struct PairInfo {
    base_latency: f64,
    bottleneck_bw: f64,
    load_factor: f64,
    /// Inter-switch links on the path: `(link index, bandwidth)`.
    links: Vec<(u32, f64)>,
    src_node: NodeId,
    dst_node: NodeId,
    src_nic_bw: f64,
    dst_nic_bw: f64,
}

/// Execute `program` on `cluster` under `mapping` and background `load`.
///
/// `mapping[r]` is the node rank `r` runs on; several ranks may share a node
/// (its CPUs are then time-shared). Returns the wall time, per-rank stats
/// and (unless disabled) a full trace.
pub fn simulate(
    cluster: &Cluster,
    program: &Program,
    mapping: &[NodeId],
    load: &LoadState,
    config: &SimConfig,
) -> Result<SimResult, SimError> {
    let n = program.num_ranks();
    if mapping.len() != n {
        return Err(SimError::MappingMismatch {
            ranks: n,
            mapping: mapping.len(),
        });
    }
    if load.len() < cluster.len() {
        return Err(SimError::LoadMismatch {
            nodes: cluster.len(),
            load: load.len(),
        });
    }
    for &m in mapping {
        if m.index() >= cluster.len() {
            return Err(SimError::BadNode(m.0));
        }
    }
    if let Err((rank, op)) = program.validate() {
        return Err(SimError::BadProgram { rank, op });
    }
    Engine::new(cluster, program, mapping, load, config).run()
}

struct Engine<'a> {
    program: &'a Program,
    config: &'a SimConfig,
    n: usize,
    procs: Vec<ProcState>,
    /// `channels[from * n + to]`.
    channels: Vec<VecDeque<Msg>>,
    pairs: Vec<PairInfo>,
    /// Effective CPU speed of each rank (node speed × arch factor × CPU
    /// share × availability); divides compute and overhead durations.
    cpu_speed: Vec<f64>,
    /// Full-duplex NICs: independent transmit and receive occupancy.
    nic_tx_busy: Vec<f64>,
    nic_rx_busy: Vec<f64>,
    /// Full-duplex links: one occupancy slot per direction (a→b, b→a).
    link_busy: Vec<[f64; 2]>,
    rng: StdRng,
    compute_noise: Noise,
    net_noise: Noise,
    barrier_arrived: usize,
    trace_on: bool,
    mapping_nodes: Vec<NodeId>,
}

impl<'a> Engine<'a> {
    fn new(
        cluster: &'a Cluster,
        program: &'a Program,
        mapping: &'a [NodeId],
        load: &'a LoadState,
        config: &'a SimConfig,
    ) -> Self {
        let n = program.num_ranks();
        // Static CPU sharing: ranks per node determine each rank's share.
        let mut per_node = vec![0u32; cluster.len()];
        for &m in mapping {
            per_node[m.index()] += 1;
        }
        let cpu_speed = mapping
            .iter()
            .map(|&m| {
                let node = cluster.node(m);
                let share = (node.cpus as f64 / per_node[m.index()] as f64).min(1.0);
                node.speed * config.arch_factor(node.arch) * share * load.cpu_avail(m)
            })
            .collect();
        let mut pairs = Vec::with_capacity(n * n);
        for s in 0..n {
            for r in 0..n {
                let (a, b) = (mapping[s], mapping[r]);
                let p = cluster.path(a, b);
                pairs.push(PairInfo {
                    base_latency: p.base_latency,
                    bottleneck_bw: p.bottleneck_bw,
                    load_factor: config.load_adjuster.factor(load, a, b),
                    links: p
                        .link_indices
                        .iter()
                        .map(|&li| (li, cluster.links()[li as usize].bandwidth))
                        .collect(),
                    src_node: a,
                    dst_node: b,
                    src_nic_bw: cluster.node(a).nic_bandwidth,
                    dst_nic_bw: cluster.node(b).nic_bandwidth,
                });
            }
        }
        let procs = (0..n)
            .map(|r| ProcState {
                pc: 0,
                clock: 0.0,
                // A rank with an empty program is done before it starts.
                status: if program.procs[r].is_empty() {
                    Status::Done
                } else {
                    Status::Ready
                },
                stats: RankStats::default(),
                events: Vec::new(),
            })
            .collect();
        Engine {
            program,
            config,
            n,
            procs,
            channels: (0..n * n).map(|_| VecDeque::new()).collect(),
            pairs,
            cpu_speed,
            nic_tx_busy: vec![0.0; cluster.len()],
            nic_rx_busy: vec![0.0; cluster.len()],
            link_busy: vec![[0.0; 2]; cluster.links().len()],
            rng: StdRng::seed_from_u64(config.seed),
            compute_noise: Noise::new(config.compute_noise),
            net_noise: Noise::new(config.net_noise),
            barrier_arrived: 0,
            trace_on: config.collect_trace,
            mapping_nodes: mapping.to_vec(),
        }
    }

    fn run(mut self) -> Result<SimResult, SimError> {
        loop {
            match self.pick_next() {
                Pick::Proc(r) => self.step(r),
                Pick::AllDone => break,
                Pick::Stuck => {
                    let blocked = (0..self.n)
                        .filter(|&r| self.procs[r].status != Status::Done)
                        .collect();
                    return Err(SimError::Deadlock { blocked });
                }
            }
        }
        let wall_time = self
            .procs
            .iter()
            .map(|p| p.stats.end)
            .fold(0.0f64, f64::max);
        let ranks = self
            .procs
            .iter_mut()
            .enumerate()
            .map(|(r, p)| RankTrace {
                rank: r,
                node: self.mapping_nodes[r],
                events: std::mem::take(&mut p.events),
                end: p.stats.end,
            })
            .collect();
        let stats = self.procs.iter().map(|p| p.stats).collect();
        Ok(SimResult {
            wall_time,
            trace: Trace { ranks, wall_time },
            stats,
        })
    }

    /// Choose the rank whose next action starts earliest in virtual time.
    fn pick_next(&mut self) -> Pick {
        let mut best: Option<(f64, usize)> = None;
        let mut all_done = true;
        for r in 0..self.n {
            let p = &self.procs[r];
            let start = match p.status {
                Status::Done => continue,
                Status::Ready => p.clock,
                Status::WaitRecv { from, since } => {
                    all_done = false;
                    match self.channels[from * self.n + r].front() {
                        Some(m) => m.arrival.max(since),
                        None => continue,
                    }
                }
                Status::WaitBarrier { .. } => {
                    all_done = false;
                    continue;
                }
            };
            all_done = false;
            if best.is_none_or(|(t, _)| start < t) {
                best = Some((start, r));
            }
        }
        match best {
            Some((_, r)) => Pick::Proc(r),
            None if all_done => Pick::AllDone,
            None => Pick::Stuck,
        }
    }

    /// Execute one step (one op, or the completion of a pending wait) for
    /// rank `r`.
    fn step(&mut self, r: usize) {
        if let Status::WaitRecv { from, since } = self.procs[r].status {
            self.complete_recv(r, from, since);
            return;
        }
        let op = self.program.procs[r][self.procs[r].pc];
        match op {
            Op::Compute { seconds } => {
                let f = self.compute_noise.factor(&mut self.rng);
                let dur = seconds / self.cpu_speed[r] * f;
                let start = self.procs[r].clock;
                self.record(r, TraceEvent::Compute { start, dur });
                let p = &mut self.procs[r];
                p.stats.x += dur;
                p.clock += dur;
                self.advance(r);
            }
            Op::Send { to, bytes } => {
                self.do_send(r, to, bytes);
                self.advance(r);
            }
            Op::Recv { from } => {
                self.pay_overhead(r, self.config.recv_overhead);
                let since = self.procs[r].clock;
                if self.channels[from * self.n + r].front().is_some() {
                    self.complete_recv(r, from, since);
                } else {
                    self.procs[r].status = Status::WaitRecv { from, since };
                }
            }
            Op::SendRecv { to, bytes, from } => {
                self.do_send(r, to, bytes);
                self.pay_overhead(r, self.config.recv_overhead);
                let since = self.procs[r].clock;
                if self.channels[from * self.n + r].front().is_some() {
                    self.complete_recv(r, from, since);
                } else {
                    self.procs[r].status = Status::WaitRecv { from, since };
                }
            }
            Op::Barrier => {
                let since = self.procs[r].clock;
                self.procs[r].status = Status::WaitBarrier { since };
                self.barrier_arrived += 1;
                if self.barrier_arrived == self.n {
                    self.release_barrier();
                }
            }
            Op::Segment(id) => {
                let t = self.procs[r].clock;
                self.record(r, TraceEvent::Segment { t, id });
                self.advance(r);
            }
        }
    }

    /// Pay CPU-scaled messaging overhead and account it as `O_i`.
    fn pay_overhead(&mut self, r: usize, nominal: f64) {
        let dur = nominal / self.cpu_speed[r];
        let start = self.procs[r].clock;
        self.record(r, TraceEvent::Overhead { start, dur });
        let p = &mut self.procs[r];
        p.stats.o += dur;
        p.clock += dur;
    }

    /// Post a send: pay overhead, route the payload through the network
    /// model, enqueue the message with its computed arrival time.
    fn do_send(&mut self, r: usize, to: usize, bytes: u64) {
        let nominal = self.config.send_overhead + bytes as f64 * self.config.per_byte_overhead;
        self.pay_overhead(r, nominal);
        let t0 = self.procs[r].clock;
        self.record(r, TraceEvent::Send { t: t0, to, bytes });
        let arrival = self.route(r, to, bytes, t0);
        self.channels[r * self.n + to].push_back(Msg { arrival, bytes });
        // A rank waiting on this channel can now be scheduled; nothing to do
        // here — `pick_next` re-examines channel fronts every step.
    }

    /// Network transit: base latency (load-adjusted) plus serialisation at
    /// the bottleneck, with optional contention on NICs and links.
    fn route(&mut self, s: usize, rr: usize, bytes: u64, t0: f64) -> f64 {
        let pair = &self.pairs[s * self.n + rr];
        let ser = bytes as f64 / pair.bottleneck_bw;
        let noise = self.net_noise.factor(&mut self.rng);
        if !self.config.contention || pair.src_node == pair.dst_node {
            return t0 + (pair.base_latency * pair.load_factor + ser) * noise;
        }
        // Earliest time every resource on the path is free; each resource is
        // then occupied only for ITS OWN serialisation time (cut-through
        // style), so a fast backbone link is not convoyed behind slow NICs.
        // NICs and links are full duplex: the sender's transmit side, the
        // receiver's receive side, and one direction of each link.
        let dir = usize::from(s > rr);
        let mut start = t0
            .max(self.nic_tx_busy[pair.src_node.index()])
            .max(self.nic_rx_busy[pair.dst_node.index()]);
        for &(li, _) in &pair.links {
            start = start.max(self.link_busy[li as usize][dir]);
        }
        let bytes_f = bytes as f64;
        self.nic_tx_busy[pair.src_node.index()] = start + bytes_f / pair.src_nic_bw;
        self.nic_rx_busy[pair.dst_node.index()] = start + bytes_f / pair.dst_nic_bw;
        for &(li, bw) in &pair.links {
            self.link_busy[li as usize][dir] = start + bytes_f / bw;
        }
        start + (pair.base_latency * pair.load_factor + ser) * noise
    }

    /// Finish a (possibly waiting) receive: match the front message, account
    /// blocked time, deliver.
    fn complete_recv(&mut self, r: usize, from: usize, since: f64) {
        let msg = self.channels[from * self.n + r]
            .pop_front()
            .expect("complete_recv requires a pending message");
        let resume = since.max(msg.arrival);
        if resume > since {
            self.record(
                r,
                TraceEvent::Blocked {
                    start: since,
                    dur: resume - since,
                },
            );
            self.procs[r].stats.b += resume - since;
        }
        self.record(
            r,
            TraceEvent::Recv {
                t: resume,
                from,
                bytes: msg.bytes,
            },
        );
        self.procs[r].clock = resume;
        self.procs[r].status = Status::Ready;
        self.advance(r);
    }

    /// All ranks arrived: release the barrier at the latest arrival plus the
    /// synchronisation cost.
    fn release_barrier(&mut self) {
        let mut t_rel = 0.0f64;
        for p in &self.procs {
            if let Status::WaitBarrier { since } = p.status {
                t_rel = t_rel.max(since);
            }
        }
        t_rel += self.config.barrier_cost;
        for r in 0..self.n {
            if let Status::WaitBarrier { since } = self.procs[r].status {
                if t_rel > since {
                    self.record(
                        r,
                        TraceEvent::Blocked {
                            start: since,
                            dur: t_rel - since,
                        },
                    );
                    self.procs[r].stats.b += t_rel - since;
                }
                self.procs[r].clock = t_rel;
                self.procs[r].status = Status::Ready;
                self.advance(r);
            }
        }
        self.barrier_arrived = 0;
    }

    /// Move past the current op; mark the rank done at the end of its
    /// program.
    fn advance(&mut self, r: usize) {
        let p = &mut self.procs[r];
        p.pc += 1;
        if p.pc >= self.program.procs[r].len() {
            p.status = Status::Done;
            p.stats.end = p.clock;
        }
    }

    #[inline]
    fn record(&mut self, r: usize, e: TraceEvent) {
        if self.trace_on {
            self.procs[r].events.push(e);
        }
    }
}

enum Pick {
    Proc(usize),
    AllDone,
    Stuck,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbes_cluster::presets::two_switch_demo;
    use cbes_cluster::Architecture;

    fn idle(c: &Cluster) -> LoadState {
        LoadState::idle(c.len())
    }

    fn cfg() -> SimConfig {
        SimConfig::default().noiseless()
    }

    /// Rank 0 computes then sends; rank 1 receives.
    fn ping(bytes: u64, comp: f64) -> Program {
        let mut p = Program::new(2);
        p.push(0, Op::Compute { seconds: comp });
        p.push(0, Op::Send { to: 1, bytes });
        p.push(1, Op::Recv { from: 0 });
        p
    }

    #[test]
    fn compute_time_scales_with_node_speed() {
        let c = two_switch_demo();
        let mut p = Program::new(1);
        p.push(0, Op::Compute { seconds: 2.0 });
        // Node 0: Alpha speed 1.0. Node 4: Intel speed 0.85.
        let fast = simulate(&c, &p, &[NodeId(0)], &idle(&c), &cfg()).unwrap();
        let slow = simulate(&c, &p, &[NodeId(4)], &idle(&c), &cfg()).unwrap();
        assert!((fast.wall_time - 2.0).abs() < 1e-9);
        assert!((slow.wall_time - 2.0 / 0.85).abs() < 1e-9);
    }

    #[test]
    fn receiver_blocks_until_message_arrives() {
        let c = two_switch_demo();
        let r = simulate(
            &c,
            &ping(1024, 1.0),
            &[NodeId(0), NodeId(1)],
            &idle(&c),
            &cfg(),
        )
        .unwrap();
        // Rank 1 spent ~1 s blocked (sender computed first).
        assert!(r.stats[1].b > 0.9, "b = {}", r.stats[1].b);
        assert!(r.wall_time > 1.0);
        assert!(r.wall_time < 1.01);
    }

    #[test]
    fn cross_switch_mapping_is_slower() {
        let c = two_switch_demo();
        // Many messages so the latency difference is visible.
        let mut p = Program::new(2);
        for _ in 0..200 {
            p.push(0, Op::Send { to: 1, bytes: 4096 });
            p.push(1, Op::Recv { from: 0 });
        }
        let near = simulate(&c, &p, &[NodeId(0), NodeId(1)], &idle(&c), &cfg()).unwrap();
        let far = simulate(&c, &p, &[NodeId(0), NodeId(4)], &idle(&c), &cfg()).unwrap();
        assert!(
            far.wall_time > near.wall_time,
            "far {} near {}",
            far.wall_time,
            near.wall_time
        );
    }

    #[test]
    fn cpu_load_slows_execution() {
        let c = two_switch_demo();
        let mut p = Program::new(1);
        p.push(0, Op::Compute { seconds: 1.0 });
        let mut loaded = idle(&c);
        loaded.set_cpu_avail(NodeId(0), 0.5);
        let idle_r = simulate(&c, &p, &[NodeId(0)], &idle(&c), &cfg()).unwrap();
        let load_r = simulate(&c, &p, &[NodeId(0)], &loaded, &cfg()).unwrap();
        assert!((load_r.wall_time / idle_r.wall_time - 2.0).abs() < 1e-9);
    }

    #[test]
    fn two_ranks_share_a_single_cpu() {
        let c = two_switch_demo();
        let mut p = Program::new(2);
        p.push_all(Op::Compute { seconds: 1.0 });
        // Node 0 is a 1-CPU Alpha: two ranks -> half speed each.
        let shared = simulate(&c, &p, &[NodeId(0), NodeId(0)], &idle(&c), &cfg()).unwrap();
        assert!((shared.wall_time - 2.0).abs() < 1e-9);
        // Node 4 is a 2-CPU Intel: two ranks -> full per-CPU speed.
        let dual = simulate(&c, &p, &[NodeId(4), NodeId(4)], &idle(&c), &cfg()).unwrap();
        assert!((dual.wall_time - 1.0 / 0.85).abs() < 1e-9);
    }

    #[test]
    fn barrier_synchronises_all_ranks() {
        let c = two_switch_demo();
        let mut p = Program::new(3);
        p.push(0, Op::Compute { seconds: 0.5 });
        p.push(1, Op::Compute { seconds: 1.5 });
        p.push(2, Op::Compute { seconds: 1.0 });
        p.push_all(Op::Barrier);
        p.push_all(Op::Compute { seconds: 0.1 });
        let r = simulate(
            &c,
            &p,
            &[NodeId(0), NodeId(1), NodeId(2)],
            &idle(&c),
            &cfg(),
        )
        .unwrap();
        // Everyone leaves the barrier at ~1.5 and computes 0.1 more.
        for s in &r.stats {
            assert!((s.end - 1.6).abs() < 1e-3, "end {}", s.end);
        }
        // Rank 0 blocked ~1.0 in the barrier.
        assert!((r.stats[0].b - 1.0).abs() < 1e-3);
    }

    #[test]
    fn sendrecv_exchange_does_not_deadlock() {
        let c = two_switch_demo();
        let mut p = Program::new(2);
        for _ in 0..10 {
            p.push(
                0,
                Op::SendRecv {
                    to: 1,
                    bytes: 1024,
                    from: 1,
                },
            );
            p.push(
                1,
                Op::SendRecv {
                    to: 0,
                    bytes: 1024,
                    from: 0,
                },
            );
        }
        let r = simulate(&c, &p, &[NodeId(0), NodeId(1)], &idle(&c), &cfg()).unwrap();
        assert!(r.wall_time > 0.0 && r.wall_time < 0.1);
    }

    #[test]
    fn head_to_head_recv_deadlock_is_detected() {
        let c = two_switch_demo();
        let mut p = Program::new(2);
        p.push(0, Op::Recv { from: 1 });
        p.push(1, Op::Recv { from: 0 });
        let err = simulate(&c, &p, &[NodeId(0), NodeId(1)], &idle(&c), &cfg()).unwrap_err();
        assert_eq!(
            err,
            SimError::Deadlock {
                blocked: vec![0, 1]
            }
        );
    }

    #[test]
    fn same_seed_is_bitwise_reproducible() {
        let c = two_switch_demo();
        let cfgn = SimConfig::default().with_seed(33);
        let p = ping(64 * 1024, 0.2);
        let a = simulate(&c, &p, &[NodeId(0), NodeId(4)], &idle(&c), &cfgn).unwrap();
        let b = simulate(&c, &p, &[NodeId(0), NodeId(4)], &idle(&c), &cfgn).unwrap();
        assert_eq!(a.wall_time, b.wall_time);
        assert_eq!(a.trace, b.trace);
        let d = simulate(
            &c,
            &p,
            &[NodeId(0), NodeId(4)],
            &idle(&c),
            &SimConfig::default().with_seed(34),
        )
        .unwrap();
        assert_ne!(a.wall_time, d.wall_time);
    }

    #[test]
    fn stats_match_trace_totals() {
        let c = two_switch_demo();
        let mut p = Program::new(2);
        for _ in 0..5 {
            p.push(0, Op::Compute { seconds: 0.01 });
            p.push(0, Op::Send { to: 1, bytes: 2048 });
            p.push(1, Op::Compute { seconds: 0.005 });
            p.push(1, Op::Recv { from: 0 });
        }
        let r = simulate(&c, &p, &[NodeId(0), NodeId(5)], &idle(&c), &cfg()).unwrap();
        for (rank, s) in r.stats.iter().enumerate() {
            let (x, o, b) = r.trace.ranks[rank].totals();
            assert!((x - s.x).abs() < 1e-12);
            assert!((o - s.o).abs() < 1e-12);
            assert!((b - s.b).abs() < 1e-12);
        }
    }

    #[test]
    fn contention_serialises_concurrent_transfers() {
        let c = two_switch_demo();
        // Two big simultaneous transfers into the same destination NIC.
        let mut p = Program::new(3);
        p.push(
            0,
            Op::Send {
                to: 2,
                bytes: 1_000_000,
            },
        );
        p.push(
            1,
            Op::Send {
                to: 2,
                bytes: 1_000_000,
            },
        );
        p.push(2, Op::Recv { from: 0 });
        p.push(2, Op::Recv { from: 1 });
        let with = simulate(
            &c,
            &p,
            &[NodeId(0), NodeId(1), NodeId(2)],
            &idle(&c),
            &cfg(),
        )
        .unwrap();
        let without = simulate(
            &c,
            &p,
            &[NodeId(0), NodeId(1), NodeId(2)],
            &idle(&c),
            &cfg().without_contention(),
        )
        .unwrap();
        assert!(
            with.wall_time > without.wall_time * 1.3,
            "with {} without {}",
            with.wall_time,
            without.wall_time
        );
    }

    #[test]
    fn mapping_mismatch_is_rejected() {
        let c = two_switch_demo();
        let p = ping(8, 0.0);
        let err = simulate(&c, &p, &[NodeId(0)], &idle(&c), &cfg()).unwrap_err();
        assert!(matches!(err, SimError::MappingMismatch { .. }));
    }

    #[test]
    fn bad_node_is_rejected() {
        let c = two_switch_demo();
        let p = ping(8, 0.0);
        let err = simulate(&c, &p, &[NodeId(0), NodeId(99)], &idle(&c), &cfg()).unwrap_err();
        assert_eq!(err, SimError::BadNode(99));
    }

    #[test]
    fn arch_factors_modulate_speed() {
        let c = two_switch_demo();
        let mut p = Program::new(1);
        p.push(0, Op::Compute { seconds: 1.0 });
        let mut cfg_slow = cfg();
        cfg_slow.arch_factors.insert(Architecture::Alpha, 0.5);
        let base = simulate(&c, &p, &[NodeId(0)], &idle(&c), &cfg()).unwrap();
        let slow = simulate(&c, &p, &[NodeId(0)], &idle(&c), &cfg_slow).unwrap();
        assert!((slow.wall_time / base.wall_time - 2.0).abs() < 1e-9);
    }

    #[test]
    fn trace_can_be_disabled() {
        let c = two_switch_demo();
        let mut cfg2 = cfg();
        cfg2.collect_trace = false;
        let r = simulate(
            &c,
            &ping(1024, 0.1),
            &[NodeId(0), NodeId(1)],
            &idle(&c),
            &cfg2,
        )
        .unwrap();
        assert!(r.trace.ranks.iter().all(|rt| rt.events.is_empty()));
        assert!(r.wall_time > 0.0);
        assert!(r.stats[0].x > 0.0);
    }

    #[test]
    fn messages_between_a_pair_are_delivered_in_fifo_order() {
        let c = two_switch_demo();
        let mut p = Program::new(2);
        // Two differently-sized messages on the same channel; the receiver
        // must see them in send order regardless of transfer times.
        p.push(
            0,
            Op::Send {
                to: 1,
                bytes: 500_000,
            },
        ); // slow transfer
        p.push(0, Op::Send { to: 1, bytes: 8 }); // fast transfer
        p.push(1, Op::Recv { from: 0 });
        p.push(1, Op::Recv { from: 0 });
        let r = simulate(&c, &p, &[NodeId(0), NodeId(1)], &idle(&c), &cfg()).unwrap();
        let recvs: Vec<u64> = r.trace.ranks[1]
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Recv { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .collect();
        assert_eq!(recvs, vec![500_000, 8], "FIFO per channel");
    }

    #[test]
    fn consecutive_barriers_work() {
        let c = two_switch_demo();
        let mut p = Program::new(4);
        for _ in 0..5 {
            p.push_all(Op::Barrier);
        }
        let mapping: Vec<NodeId> = (0..4).map(NodeId).collect();
        let r = simulate(&c, &p, &mapping, &idle(&c), &cfg()).unwrap();
        // Five barrier releases at 25 us each.
        assert!((r.wall_time - 5.0 * 25e-6).abs() < 1e-9, "{}", r.wall_time);
    }

    #[test]
    fn pre_sent_messages_do_not_block_the_receiver() {
        let c = two_switch_demo();
        let mut p = Program::new(2);
        p.push(0, Op::Send { to: 1, bytes: 64 });
        // Receiver computes long enough for the message to be waiting.
        p.push(1, Op::Compute { seconds: 1.0 });
        p.push(1, Op::Recv { from: 0 });
        let r = simulate(&c, &p, &[NodeId(0), NodeId(1)], &idle(&c), &cfg()).unwrap();
        assert_eq!(r.stats[1].b, 0.0, "message was already there");
    }

    #[test]
    fn empty_program_completes_instantly() {
        let c = two_switch_demo();
        let p = Program::new(3);
        let mapping: Vec<NodeId> = (0..3).map(NodeId).collect();
        let r = simulate(&c, &p, &mapping, &idle(&c), &cfg()).unwrap();
        assert_eq!(r.wall_time, 0.0);
    }

    #[test]
    fn load_state_too_small_is_rejected() {
        let c = two_switch_demo();
        let p = ping(8, 0.0);
        let err =
            simulate(&c, &p, &[NodeId(0), NodeId(1)], &LoadState::idle(2), &cfg()).unwrap_err();
        assert!(matches!(err, SimError::LoadMismatch { .. }));
    }

    #[test]
    fn nic_load_inflates_message_latency() {
        let c = two_switch_demo();
        let mut loaded = idle(&c);
        loaded.set_nic_load(NodeId(1), 0.8);
        let p = ping(1024, 0.0);
        let quiet = simulate(&c, &p, &[NodeId(0), NodeId(1)], &idle(&c), &cfg()).unwrap();
        let busy = simulate(&c, &p, &[NodeId(0), NodeId(1)], &loaded, &cfg()).unwrap();
        assert!(
            busy.wall_time > quiet.wall_time * 1.2,
            "busy {} quiet {}",
            busy.wall_time,
            quiet.wall_time
        );
    }

    #[test]
    fn segments_are_recorded() {
        let c = two_switch_demo();
        let mut p = Program::new(1);
        p.push(0, Op::Compute { seconds: 0.1 });
        p.push(0, Op::Segment(1));
        p.push(0, Op::Compute { seconds: 0.2 });
        let r = simulate(&c, &p, &[NodeId(0)], &idle(&c), &cfg()).unwrap();
        assert!(r.trace.ranks[0]
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::Segment { id: 1, .. })));
    }
}
