//! The simulated program model: per-rank operation sequences.

use serde::{Deserialize, Serialize};

/// One operation in a rank's program. Programs use blocking, standard-mode
/// point-to-point semantics (eager/buffered sends) plus barriers; collective
/// operations are lowered to these primitives by `cbes-workloads`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Execute application code costing `seconds` on the reference
    /// (speed 1.0) architecture.
    Compute {
        /// Nominal duration on the reference architecture.
        seconds: f64,
    },
    /// Post a standard-mode send of `bytes` to rank `to`. The sender pays
    /// CPU overhead and continues (eager buffering); the payload travels
    /// through the network model.
    Send {
        /// Destination rank.
        to: usize,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// Blocking receive of the next message from rank `from`.
    Recv {
        /// Source rank.
        from: usize,
    },
    /// Combined exchange: post the send, then receive — the deadlock-free
    /// halo-exchange primitive (MPI_Sendrecv).
    SendRecv {
        /// Destination rank for the outgoing payload.
        to: usize,
        /// Outgoing payload size in bytes.
        bytes: u64,
        /// Source rank for the incoming payload.
        from: usize,
    },
    /// Global barrier across all ranks.
    Barrier,
    /// Phase marker: subsequent events belong to segment `id`.
    Segment(u32),
}

/// A complete simulated application: one [`Op`] sequence per rank.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Program {
    /// Per-rank operation sequences; `procs.len()` is the process count.
    pub procs: Vec<Vec<Op>>,
}

impl Program {
    /// An empty program with `n` ranks.
    pub fn new(n: usize) -> Self {
        Program {
            procs: vec![Vec::new(); n],
        }
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.procs.len()
    }

    /// Append an op to one rank's program.
    pub fn push(&mut self, rank: usize, op: Op) {
        self.procs[rank].push(op);
    }

    /// Append an op to every rank's program.
    pub fn push_all(&mut self, op: Op) {
        for p in &mut self.procs {
            p.push(op);
        }
    }

    /// Total op count over all ranks.
    pub fn total_ops(&self) -> usize {
        self.procs.iter().map(|p| p.len()).sum()
    }

    /// Validate that all peer ranks referenced by sends/receives exist and
    /// no rank messages itself. Returns the offending `(rank, op_index)` on
    /// failure.
    pub fn validate(&self) -> Result<(), (usize, usize)> {
        let n = self.num_ranks();
        for (rank, ops) in self.procs.iter().enumerate() {
            for (i, op) in ops.iter().enumerate() {
                let bad = match *op {
                    Op::Send { to, .. } => to >= n || to == rank,
                    Op::Recv { from } => from >= n || from == rank,
                    Op::SendRecv { to, from, .. } => {
                        to >= n || from >= n || to == rank || from == rank
                    }
                    Op::Compute { seconds } => seconds.is_nan() || seconds < 0.0,
                    _ => false,
                };
                if bad {
                    return Err((rank, i));
                }
            }
        }
        Ok(())
    }

    /// Total nominal compute seconds per rank (reference architecture).
    pub fn compute_per_rank(&self) -> Vec<f64> {
        self.procs
            .iter()
            .map(|ops| {
                ops.iter()
                    .map(|op| match op {
                        Op::Compute { seconds } => *seconds,
                        _ => 0.0,
                    })
                    .sum()
            })
            .collect()
    }

    /// Total message count and payload bytes over the whole program.
    pub fn message_totals(&self) -> (u64, u64) {
        let mut count = 0u64;
        let mut bytes = 0u64;
        for ops in &self.procs {
            for op in ops {
                match *op {
                    Op::Send { bytes: b, .. } | Op::SendRecv { bytes: b, .. } => {
                        count += 1;
                        bytes += b;
                    }
                    _ => {}
                }
            }
        }
        (count, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_totals() {
        let mut p = Program::new(2);
        p.push(0, Op::Compute { seconds: 1.0 });
        p.push(0, Op::Send { to: 1, bytes: 100 });
        p.push(1, Op::Recv { from: 0 });
        p.push_all(Op::Barrier);
        assert_eq!(p.num_ranks(), 2);
        assert_eq!(p.total_ops(), 5);
        assert_eq!(p.compute_per_rank(), vec![1.0, 0.0]);
        assert_eq!(p.message_totals(), (1, 100));
    }

    #[test]
    fn validate_catches_bad_peers() {
        let mut p = Program::new(2);
        p.push(0, Op::Send { to: 5, bytes: 1 });
        assert_eq!(p.validate(), Err((0, 0)));

        let mut p = Program::new(2);
        p.push(1, Op::Recv { from: 1 });
        assert_eq!(p.validate(), Err((1, 0)));

        let mut p = Program::new(2);
        p.push(0, Op::Compute { seconds: f64::NAN });
        assert_eq!(p.validate(), Err((0, 0)));
    }

    #[test]
    fn validate_accepts_well_formed_programs() {
        let mut p = Program::new(3);
        p.push(
            0,
            Op::SendRecv {
                to: 1,
                bytes: 10,
                from: 2,
            },
        );
        p.push(1, Op::Recv { from: 0 });
        p.push(2, Op::Send { to: 0, bytes: 10 });
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn sendrecv_counts_as_one_message() {
        let mut p = Program::new(2);
        p.push(
            0,
            Op::SendRecv {
                to: 1,
                bytes: 64,
                from: 1,
            },
        );
        assert_eq!(p.message_totals(), (1, 64));
    }
}
