//! Simulator errors.

use std::fmt;

/// Errors raised by [`crate::simulate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The mapping length does not match the program's rank count.
    MappingMismatch {
        /// Ranks in the program.
        ranks: usize,
        /// Entries in the mapping.
        mapping: usize,
    },
    /// The load state covers fewer nodes than the cluster.
    LoadMismatch {
        /// Nodes in the cluster.
        nodes: usize,
        /// Entries in the load state.
        load: usize,
    },
    /// A mapping entry references a node outside the cluster.
    BadNode(u32),
    /// The program references an invalid peer (rank, op index).
    BadProgram {
        /// Offending rank.
        rank: usize,
        /// Offending op index within that rank's program.
        op: usize,
    },
    /// Execution stalled: the listed ranks are blocked forever.
    Deadlock {
        /// Ranks that can never make progress.
        blocked: Vec<usize>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MappingMismatch { ranks, mapping } => {
                write!(
                    f,
                    "program has {ranks} ranks but mapping has {mapping} entries"
                )
            }
            SimError::LoadMismatch { nodes, load } => {
                write!(f, "cluster has {nodes} nodes but load state covers {load}")
            }
            SimError::BadNode(n) => write!(f, "mapping references unknown node n{n}"),
            SimError::BadProgram { rank, op } => {
                write!(f, "invalid op {op} in rank {rank}'s program")
            }
            SimError::Deadlock { blocked } => {
                write!(f, "deadlock: ranks {blocked:?} blocked forever")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_problem() {
        let e = SimError::Deadlock {
            blocked: vec![1, 3],
        };
        assert!(e.to_string().contains("[1, 3]"));
        assert!(SimError::BadNode(9).to_string().contains("n9"));
        assert!(SimError::MappingMismatch {
            ranks: 4,
            mapping: 2
        }
        .to_string()
        .contains("4 ranks"));
    }
}
