//! A discrete-event simulator of message-passing (MPI-like) programs running
//! on a modelled heterogeneous cluster.
//!
//! This crate substitutes for the paper's real testbeds (LAM/MPI on the
//! Centurion and Orange Grove clusters). It executes a [`Program`] — one
//! sequence of [`Op`]s per rank — against a [`cbes_cluster::Cluster`], a
//! background [`cbes_cluster::load::LoadState`], and a [`SimConfig`], and
//! produces the *measured* wall time plus a full execution trace from
//! which application profiles are extracted.
//!
//! ## Fidelity vs. the CBES evaluation formula
//!
//! The simulator is deliberately a *finer-grained* model than the CBES
//! prediction operation (paper eq. 4–8): it routes every individual message
//! over the switch topology with per-link serialisation and contention,
//! time-shares CPUs, applies per-event stochastic noise, and respects true
//! happens-before ordering between ranks. The evaluator only sees aggregate
//! message groups and a load-adjusted latency model. The gap between the two
//! is what yields honest prediction errors of a few percent (paper Figure 5)
//! rather than a circular zero.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod noise;
pub mod program;

pub use engine::{simulate, RankStats, SimResult};
pub use error::SimError;
pub use program::{Op, Program};

use cbes_cluster::Architecture;
use cbes_netmodel::LoadAdjuster;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Simulator configuration: timing constants, noise levels, and feature
/// switches. All time constants are in seconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// RNG seed; every run with the same seed, inputs and config is
    /// bit-for-bit reproducible.
    pub seed: u64,
    /// Relative σ of multiplicative noise on compute durations.
    pub compute_noise: f64,
    /// Relative σ of multiplicative noise on message latencies.
    pub net_noise: f64,
    /// Model link/NIC contention (serialisation of concurrent transfers).
    pub contention: bool,
    /// Fixed CPU cost of posting a send, at reference speed.
    pub send_overhead: f64,
    /// Fixed CPU cost of posting a receive, at reference speed.
    pub recv_overhead: f64,
    /// Per-byte CPU cost of message packing/unpacking, at reference speed.
    pub per_byte_overhead: f64,
    /// Fixed synchronisation cost of a barrier release.
    pub barrier_cost: f64,
    /// How endpoint load inflates message latency; must match the adjuster
    /// the prediction side uses for load effects to be learnable.
    pub load_adjuster: LoadAdjuster,
    /// Per-architecture efficiency of this application's code (multiplies
    /// node speed); empty map = 1.0 everywhere.
    pub arch_factors: BTreeMap<Architecture, f64>,
    /// Collect a full per-event trace (disable for large scheduling sweeps
    /// where only the wall time matters).
    pub collect_trace: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 1,
            compute_noise: 0.015,
            net_noise: 0.04,
            contention: true,
            send_overhead: 8e-6,
            recv_overhead: 8e-6,
            per_byte_overhead: 1.0 / 1.5e9,
            barrier_cost: 25e-6,
            load_adjuster: LoadAdjuster::default(),
            arch_factors: BTreeMap::new(),
            collect_trace: true,
        }
    }
}

impl SimConfig {
    /// Set the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Disable all stochastic noise (useful for analytical tests).
    pub fn noiseless(mut self) -> Self {
        self.compute_noise = 0.0;
        self.net_noise = 0.0;
        self
    }

    /// Disable contention modelling.
    pub fn without_contention(mut self) -> Self {
        self.contention = false;
        self
    }

    /// Architecture efficiency factor for `arch` (default 1.0).
    pub fn arch_factor(&self, arch: Architecture) -> f64 {
        self.arch_factors.get(&arch).copied().unwrap_or(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builders_compose() {
        let c = SimConfig::default()
            .with_seed(9)
            .noiseless()
            .without_contention();
        assert_eq!(c.seed, 9);
        assert_eq!(c.compute_noise, 0.0);
        assert!(!c.contention);
    }

    #[test]
    fn arch_factor_defaults_to_unity() {
        let mut c = SimConfig::default();
        assert_eq!(c.arch_factor(Architecture::Sparc), 1.0);
        c.arch_factors.insert(Architecture::Sparc, 0.9);
        assert_eq!(c.arch_factor(Architecture::Sparc), 0.9);
    }
}
