//! # CBES — Cost/Benefit Estimating Service
//!
//! A Rust reproduction of *"A Cost/Benefit Estimating Service for Mapping
//! Parallel Applications on Heterogeneous Clusters"* (Katramatos & Chapin,
//! IEEE CLUSTER 2005).
//!
//! This facade crate re-exports the whole workspace so that examples and
//! integration tests can use a single dependency:
//!
//! * [`cluster`] — heterogeneous cluster modelling (nodes, switches, links,
//!   topology, background load) plus the Centurion and Orange Grove presets.
//! * [`netmodel`] — the end-to-end network latency model, its off-line
//!   calibration procedure (with clique-parallel benchmark scheduling), the
//!   load-adjustment rule, and NWS-style forecasters.
//! * [`trace`] — execution traces and application-profile extraction
//!   (`X_i`, `O_i`, `B_i`, message groups, `λ_i`, per-architecture ratios).
//! * [`mpisim`] — a discrete-event simulator of message-passing programs on a
//!   modelled cluster; the stand-in for the paper's real MPI testbeds.
//! * [`core`] — the CBES service proper: mappings, the execution-time
//!   prediction operation (paper eq. 4–8), system snapshots, monitoring, and
//!   remapping cost/benefit analysis.
//! * [`runtime`] — run-time orchestration: phase-wise execution with
//!   monitored load, remapping decisions and migration charging (the
//!   paper's future-work loop).
//! * [`sched`] — schedulers: the default simulated-annealing scheduler (CS),
//!   the no-communication baseline (NCS), the random scheduler (RS), a greedy
//!   list scheduler, and a genetic-algorithm scheduler (paper future work).
//! * [`workloads`] — synthetic program generators standing in for NPB 2.4,
//!   HPL and the ASCI purple codes used in the paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use cbes::prelude::*;
//!
//! // 1. Model a cluster and calibrate its latency model (off-line phase).
//! let cluster = cbes::cluster::presets::orange_grove();
//! let calib = Calibrator::default().calibrate(&cluster);
//!
//! // 2. Profile an application by running it once on a profiling mapping.
//! let app = cbes::workloads::npb::lu(8, NpbClass::S);
//! let pool: Vec<NodeId> = cluster.node_ids().take(8).collect();
//! let profiling = Mapping::new(pool.clone());
//! let sim = SimConfig::default().with_seed(7);
//! let run = simulate(&cluster, &app.program, profiling.as_slice(), &LoadState::idle(cluster.len()), &sim).unwrap();
//! let profile = extract_profile(&app.name, &run.trace, &cluster, profiling.as_slice(), &calib.model);
//!
//! // 3. Ask the CBES scheduler for a good mapping.
//! let snapshot = SystemSnapshot::no_load(&cluster, &calib.model);
//! let mut cs = SaScheduler::new(SaConfig::fast(1));
//! let result = cs.schedule(&ScheduleRequest::new(&profile, &snapshot, &pool)).unwrap();
//! assert!(result.predicted_time > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cbes_cluster as cluster;
pub use cbes_core as core;
pub use cbes_mpisim as mpisim;
pub use cbes_netmodel as netmodel;
pub use cbes_runtime as runtime;
pub use cbes_sched as sched;
pub use cbes_server as server;
pub use cbes_trace as trace;
pub use cbes_workloads as workloads;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use cbes_cluster::{
        load::LoadState, presets, Architecture, Cluster, ClusterBuilder, LatencyProvider, NodeId,
        SwitchId,
    };
    pub use cbes_core::{
        eval::{Evaluator, Prediction},
        mapping::Mapping,
        monitor::Monitor,
        remap::{RemapAnalysis, RemapDecision},
        service::CbesService,
        snapshot::SystemSnapshot,
    };
    pub use cbes_mpisim::{simulate, Op, Program, SimConfig, SimResult};
    pub use cbes_netmodel::{
        calibrate::{CalibrationOutcome, Calibrator},
        forecast::{Forecaster, LastValue, RunningMean, SlidingMedian},
        model::LatencyModel,
        LoadAdjuster,
    };
    pub use cbes_runtime::{Orchestrator, PhasedApp, RunReport, RuntimeConfig};
    pub use cbes_sched::{
        genetic::GeneticScheduler,
        greedy::GreedyScheduler,
        ncs::NcsScheduler,
        random::RandomScheduler,
        sa::{SaConfig, SaScheduler},
        ScheduleRequest, ScheduleResult, Scheduler,
    };
    pub use cbes_trace::{extract_profile, AppProfile, ProcessProfile, Trace};
    pub use cbes_workloads::{npb, npb::NpbClass, Workload};
}
