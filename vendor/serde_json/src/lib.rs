//! Offline stand-in for `serde_json`, backed by the vendored [`serde`]
//! crate's [`Value`] tree (see `vendor/serde` for why).

#![forbid(unsafe_code)]

pub use serde::value::parse;
pub use serde::{write_f64, Error, Number, Value};

/// Serialise any [`serde::Serialize`] type to its value tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_compact_string())
}

/// Pretty JSON text (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_pretty_string())
}

/// Parse JSON text into any [`serde::Deserialize`] type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    T::from_value(&parse(text)?)
}

/// Build a [`Value`] from JSON-ish syntax.
///
/// Supports the shapes the workspace writes: (nested) object literals
/// with string-literal keys, array literals, `null`, and arbitrary
/// serialisable expression values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => { $crate::Value::Array($crate::__json_arr!([] $($tt)*)) };
    ({ $($tt:tt)* }) => { $crate::Value::Object($crate::__json_obj!([] $($tt)*)) };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Internal object muncher for [`json!`]: accumulates `(key, value)`
/// pairs, recursing into nested `{...}` / `[...]` values.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_obj {
    ([$($pairs:tt)*]) => { ::std::vec![$($pairs)*] };
    ([$($pairs:tt)*] $key:literal : null , $($rest:tt)*) => {
        $crate::__json_obj!([$($pairs)* ($key.to_string(), $crate::Value::Null),] $($rest)*)
    };
    ([$($pairs:tt)*] $key:literal : null) => {
        $crate::__json_obj!([$($pairs)* ($key.to_string(), $crate::Value::Null),])
    };
    ([$($pairs:tt)*] $key:literal : { $($inner:tt)* } , $($rest:tt)*) => {
        $crate::__json_obj!([$($pairs)* ($key.to_string(), $crate::json!({ $($inner)* })),] $($rest)*)
    };
    ([$($pairs:tt)*] $key:literal : { $($inner:tt)* }) => {
        $crate::__json_obj!([$($pairs)* ($key.to_string(), $crate::json!({ $($inner)* })),])
    };
    ([$($pairs:tt)*] $key:literal : [ $($inner:tt)* ] , $($rest:tt)*) => {
        $crate::__json_obj!([$($pairs)* ($key.to_string(), $crate::json!([ $($inner)* ])),] $($rest)*)
    };
    ([$($pairs:tt)*] $key:literal : [ $($inner:tt)* ]) => {
        $crate::__json_obj!([$($pairs)* ($key.to_string(), $crate::json!([ $($inner)* ])),])
    };
    ([$($pairs:tt)*] $key:literal : $val:expr , $($rest:tt)*) => {
        $crate::__json_obj!([$($pairs)* ($key.to_string(), $crate::to_value(&$val)),] $($rest)*)
    };
    ([$($pairs:tt)*] $key:literal : $val:expr) => {
        $crate::__json_obj!([$($pairs)* ($key.to_string(), $crate::to_value(&$val)),])
    };
}

/// Internal array muncher for [`json!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __json_arr {
    ([$($items:tt)*]) => { ::std::vec![$($items)*] };
    ([$($items:tt)*] null , $($rest:tt)*) => {
        $crate::__json_arr!([$($items)* $crate::Value::Null,] $($rest)*)
    };
    ([$($items:tt)*] null) => {
        $crate::__json_arr!([$($items)* $crate::Value::Null,])
    };
    ([$($items:tt)*] { $($inner:tt)* } , $($rest:tt)*) => {
        $crate::__json_arr!([$($items)* $crate::json!({ $($inner)* }),] $($rest)*)
    };
    ([$($items:tt)*] { $($inner:tt)* }) => {
        $crate::__json_arr!([$($items)* $crate::json!({ $($inner)* }),])
    };
    ([$($items:tt)*] [ $($inner:tt)* ] , $($rest:tt)*) => {
        $crate::__json_arr!([$($items)* $crate::json!([ $($inner)* ]),] $($rest)*)
    };
    ([$($items:tt)*] [ $($inner:tt)* ]) => {
        $crate::__json_arr!([$($items)* $crate::json!([ $($inner)* ]),])
    };
    ([$($items:tt)*] $item:expr , $($rest:tt)*) => {
        $crate::__json_arr!([$($items)* $crate::to_value(&$item),] $($rest)*)
    };
    ([$($items:tt)*] $item:expr) => {
        $crate::__json_arr!([$($items)* $crate::to_value(&$item),])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_objects() {
        let rows = vec![1.5f64, 2.0];
        let v = json!({ "rows": rows, "label": "x", "n": 3u32, });
        assert_eq!(
            v.to_compact_string(),
            r#"{"rows":[1.5,2.0],"label":"x","n":3}"#
        );
    }

    #[test]
    fn json_macro_arrays_and_scalars() {
        assert_eq!(json!([1u8, 2u8]).to_compact_string(), "[1,2]");
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!("s").as_str(), Some("s"));
    }

    #[test]
    fn json_macro_nests() {
        fn mean(xs: &[f64]) -> f64 {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
        let xs = [1.0f64, 3.0];
        let v = json!({
            "case": format!("LU ({})", 2),
            "ncs": {"pred": mean(&xs), "flag": null},
            "list": [ {"a": 1u8}, [2u8, 3u8], mean(&xs) ],
            "empty": {},
        });
        assert_eq!(
            v.to_compact_string(),
            r#"{"case":"LU (2)","ncs":{"pred":2.0,"flag":null},"list":[{"a":1},[2,3],2.0],"empty":{}}"#
        );
    }

    #[test]
    fn from_str_to_string_round_trip() {
        let v: Value = from_str(r#"{"a":1,"b":[true,null]}"#).unwrap();
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[true,null]}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\"a\": 1"));
    }
}
