//! `#[derive(Serialize, Deserialize)]` for the offline serde stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are unavailable offline). Supports exactly the shapes this
//! workspace uses, with the upstream serde_json wire format:
//!
//! * named-field structs           → `{"field": ..}`
//! * newtype structs               → the inner value
//! * enums with unit variants      → `"Variant"`
//! * enums with newtype variants   → `{"Variant": ..}`
//! * enums with struct variants    → `{"Variant": {"field": ..}}`
//!
//! Generics, tuple structs with more than one field, and `#[serde(..)]`
//! attributes are rejected with a compile error.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    /// struct Name { fields }
    Struct { name: String, fields: Vec<String> },
    /// struct Name(Inner);
    Newtype { name: String },
    /// enum Name { variants }
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skip attributes (`#[..]`, including doc comments) and visibility
/// (`pub`, `pub(..)`) at position `i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // '#'
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => return i,
        }
    }
}

/// Parse the comma-separated named fields of a brace group, returning the
/// field names in declaration order.
fn parse_named_fields(group: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found `{other}`")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        // Skip the type: consume until a top-level comma. `<`..`>` nesting
        // must be tracked so `BTreeMap<K, V>` commas don't split fields.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        i += 1; // the comma (or past the end)
        fields.push(name);
    }
    Ok(fields)
}

/// Count top-level comma-separated entries of a parenthesised group
/// (tuple-struct / tuple-variant fields).
fn count_tuple_fields(group: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => count += 1,
            _ => {}
        }
    }
    // A trailing comma would over-count; the workspace doesn't write them
    // in tuple fields, so keep this simple.
    count
}

fn parse_variants(group: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found `{other}`")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                i += 1;
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                if n != 1 {
                    return Err(format!(
                        "variant `{name}`: only 1-field tuple variants are supported, got {n}"
                    ));
                }
                i += 1;
                VariantKind::Newtype
            }
            _ => VariantKind::Unit,
        };
        // Skip a discriminant (`= expr`) if present, then the separating comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected type name".into()),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("`{name}`: generic types are not supported"));
    }
    match (keyword.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Shape::Struct {
                name,
                fields: parse_named_fields(g.stream())?,
            })
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            let n = count_tuple_fields(g.stream());
            if n != 1 {
                return Err(format!(
                    "`{name}`: only newtype (1-field tuple) structs are supported, got {n} fields"
                ));
            }
            Ok(Shape::Newtype { name })
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Shape::Enum {
                name,
                variants: parse_variants(g.stream())?,
            })
        }
        _ => Err(format!("`{name}`: unsupported item shape")),
    }
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_item(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__fields.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\n\
                         ::serde::Value::Object(__fields)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Newtype { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::String({vname:?}.to_string()),\n"
                        ),
                        VariantKind::Newtype => format!(
                            "{name}::{vname}(__x) => ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Serialize::to_value(__x))]),\n"
                        ),
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let pushes: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "__inner.push(({f:?}.to_string(), ::serde::Serialize::to_value({f})));"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => {{\n\
                                     let mut __inner: Vec<(String, ::serde::Value)> = Vec::new();\n\
                                     {pushes}\n\
                                     ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Value::Object(__inner))])\n\
                                 }},\n"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_item(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::from_field(__obj, {f:?})?,\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let __obj = __v.as_object().ok_or_else(|| ::serde::Error::custom(\
                             format!(\"expected object for {name}, got {{}}\", __v.kind())))?;\n\
                         Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Newtype { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     Ok({name}(::serde::Deserialize::from_value(__v)?))\n\
                 }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("{vname:?} => return Ok({name}::{vname}),\n")
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Newtype => Some(format!(
                            "{vname:?} => return Ok({name}::{vname}(::serde::Deserialize::from_value(__content)?)),\n"
                        )),
                        VariantKind::Struct(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::from_field(__inner, {f:?})?,\n"))
                                .collect();
                            Some(format!(
                                "{vname:?} => {{\n\
                                     let __inner = __content.as_object().ok_or_else(|| ::serde::Error::custom(\
                                         format!(\"expected object for variant {name}::{vname}\")))?;\n\
                                     return Ok({name}::{vname} {{\n{inits}}});\n\
                                 }},\n"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         if let Some(__s) = __v.as_str() {{\n\
                             match __s {{\n{unit_arms}_ => {{}}\n}}\n\
                         }}\n\
                         if let Some(__obj) = __v.as_object() {{\n\
                             if __obj.len() == 1 {{\n\
                                 let (__tag, __content) = &__obj[0];\n\
                                 match __tag.as_str() {{\n{tagged_arms}_ => {{}}\n}}\n\
                             }}\n\
                         }}\n\
                         Err(::serde::Error::custom(format!(\
                             \"no variant of {name} matches {{}}\", __v.kind())))\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
