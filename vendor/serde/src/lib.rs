//! Offline stand-in for `serde`, API-compatible with the subset this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal implementation of its dependency set (DESIGN.md §3).
//! Unlike upstream serde's zero-copy visitor architecture, this stand-in
//! round-trips everything through an owned JSON [`Value`] tree — dramatically
//! simpler, and plenty fast for profile/spec/artifact (de)serialisation.
//!
//! * [`Serialize`] — convert `&self` into a [`Value`].
//! * [`Deserialize`] — reconstruct `Self` from a [`Value`].
//! * `#[derive(Serialize, Deserialize)]` — provided by the companion
//!   `serde_derive` proc-macro (enabled by the `derive` feature), supporting
//!   named-field structs, newtype structs, and enums with unit, newtype and
//!   struct variants — the shapes this workspace uses. The wire format
//!   matches upstream serde_json's externally-tagged defaults.

#![forbid(unsafe_code)]

pub mod value;

pub use value::{write_f64, Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Serialisation/deserialisation error: a message, nothing more.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error carrying `msg`.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into a JSON [`Value`].
pub trait Serialize {
    /// Build the value tree representing `self`.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Parse `Self` out of a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Fetch and deserialise one struct field from an object's entry list
/// (used by derive-generated code).
pub fn from_field<T: Deserialize>(obj: &[(String, Value)], key: &str) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v),
        None => Err(Error::custom(format!("missing field `{key}`"))),
    }
}

macro_rules! int_impl {
    ($($t:ty => $as:ident),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                #[allow(unused_comparisons)]
                if *self < 0 {
                    Value::Number(Number::Int(*self as i64))
                } else {
                    Value::Number(Number::UInt(*self as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => n
                        .$as()
                        .ok_or_else(|| Error::custom(concat!("number out of range for ", stringify!($t)))),
                    other => Err(Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {}"),
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

int_impl! {
    u8 => as_u8, u16 => as_u16, u32 => as_u32, u64 => as_u64, usize => as_usize,
    i8 => as_i8, i16 => as_i16, i32 => as_i32, i64 => as_i64, isize => as_isize,
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            other => Err(Error::custom(format!("expected f64, got {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::custom(format!(
                "expected 2-element array, got {}",
                other.kind()
            ))),
        }
    }
}

/// Render a map key: plain strings pass through; any other key type is
/// encoded as its compact JSON text (mirrors serde_json's restriction that
/// object keys be strings, while still round-tripping e.g. unit-variant
/// enum keys, which serialise as strings anyway).
fn key_to_string<K: Serialize>(key: &K) -> String {
    match key.to_value() {
        Value::String(s) => s,
        other => other.to_compact_string(),
    }
}

/// Reverse of [`key_to_string`]: try the raw string first, then fall back
/// to parsing the key text as JSON.
fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    let as_string = Value::String(key.to_string());
    K::from_value(&as_string).or_else(|first_err| match value::parse(key) {
        Ok(v) => K::from_value(&v),
        Err(_) => Err(first_err),
    })
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn f64_accepts_integer_json() {
        assert_eq!(
            f64::from_value(&Value::Number(Number::UInt(3))).unwrap(),
            3.0
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1.25f64);
        assert_eq!(
            BTreeMap::<String, f64>::from_value(&m.to_value()).unwrap(),
            m
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u8>::from_value(&5u8.to_value()).unwrap(), Some(5));
    }

    #[test]
    fn range_errors_are_reported() {
        assert!(u8::from_value(&Value::Number(Number::UInt(300))).is_err());
        assert!(u32::from_value(&Value::String("x".into())).is_err());
    }
}
