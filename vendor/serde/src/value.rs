//! The JSON data model: [`Value`], [`Number`], emitter and parser.

use crate::Error;
use std::fmt;

/// A JSON number, preserving the integer/float distinction the way
/// serde_json does.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A negative integer.
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
}

macro_rules! number_as {
    ($($name:ident => $t:ty),* $(,)?) => {$(
        /// The number as the target integer type, if exactly representable.
        pub fn $name(&self) -> Option<$t> {
            match *self {
                Number::Int(i) => <$t>::try_from(i).ok(),
                Number::UInt(u) => <$t>::try_from(u).ok(),
                Number::Float(f) => {
                    if f.fract() == 0.0 && f >= <$t>::MIN as f64 && f <= <$t>::MAX as f64 {
                        Some(f as $t)
                    } else {
                        None
                    }
                }
            }
        }
    )*};
}

impl Number {
    number_as! {
        as_u8 => u8, as_u16 => u16, as_u32 => u32, as_u64 => u64, as_usize => usize,
        as_i8 => i8, as_i16 => i16, as_i32 => i32, as_i64 => i64, as_isize => isize,
    }

    /// The number as `f64` (always possible, possibly lossy).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::Int(i) => i as f64,
            Number::UInt(u) => u as f64,
            Number::Float(f) => f,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::Int(a), Number::Int(b)) => a == b,
            (Number::UInt(a), Number::UInt(b)) => a == b,
            (Number::Float(a), Number::Float(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

/// An owned JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as an insertion-ordered entry list (objects in this
    /// workspace are small; lookup is a linear scan).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The number as `u64`, if this is an exactly-representable integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The bool payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The entry list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Look up an object entry by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Compact (single-line) JSON text.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        emit(self, &mut out, None, 0);
        out
    }

    /// Pretty JSON text with two-space indentation (serde_json style).
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        emit(self, &mut out, Some(2), 0);
        out
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact_string())
    }
}

/// Append one JSON number for `f`: Rust's shortest-round-trip
/// formatting with a trailing `.0` forced onto integral values so
/// floats stay visibly floats, as serde_json does. Non-finite values
/// become `null` — serde_json refuses NaN/inf; this keeps an artifact
/// parseable instead of aborting a whole experiment dump.
///
/// Public so hand-written fast encoders (e.g. the server's hot-path
/// reply serialiser) emit byte-identical numbers to the generic
/// [`Value`] emitter.
pub fn write_f64(f: f64, out: &mut String) {
    use std::fmt::Write as _;
    if f.is_finite() {
        let start = out.len();
        let _ = write!(out, "{f}");
        if !out[start..].contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn emit_f64(f: f64, out: &mut String) {
    write_f64(f, out);
}

fn emit_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: usize, depth: usize) {
    out.push('\n');
    for _ in 0..indent * depth {
        out.push(' ');
    }
}

fn emit(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(Number::Int(i)) => {
            use std::fmt::Write as _;
            let _ = write!(out, "{i}");
        }
        Value::Number(Number::UInt(u)) => {
            use std::fmt::Write as _;
            let _ = write!(out, "{u}");
        }
        Value::Number(Number::Float(f)) => emit_f64(*f, out),
        Value::String(s) => emit_str(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(n) = indent {
                    newline_indent(out, n, depth + 1);
                }
                emit(item, out, indent, depth + 1);
            }
            if let Some(n) = indent {
                newline_indent(out, n, depth);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(n) = indent {
                    newline_indent(out, n, depth + 1);
                }
                emit_str(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                emit(val, out, indent, depth + 1);
            }
            if let Some(n) = indent {
                newline_indent(out, n, depth);
            }
            out.push('}');
        }
    }
}

/// Parse JSON text into a [`Value`].
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let code = u16::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX for the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                let code = 0x10000
                                    + ((u32::from(hi) - 0xD800) << 10)
                                    + (u32::from(lo) - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad surrogate pair"))?
                            } else {
                                char::from_u32(u32::from(hi))
                                    .ok_or_else(|| self.err("bad \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        let n = if float {
            Number::Float(text.parse().map_err(|_| self.err("bad number"))?)
        } else if let Some(stripped) = text.strip_prefix('-') {
            let _ = stripped;
            match text.parse::<i64>() {
                Ok(i) => Number::Int(i),
                Err(_) => Number::Float(text.parse().map_err(|_| self.err("bad number"))?),
            }
        } else {
            match text.parse::<u64>() {
                Ok(u) => Number::UInt(u),
                Err(_) => Number::Float(text.parse().map_err(|_| self.err("bad number"))?),
            }
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_compact_text() {
        let text = r#"{"a":[1,2.5,-3],"b":{"c":"x\ny","d":null},"e":true}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.to_compact_string(), text);
    }

    #[test]
    fn integers_and_floats_are_distinguished() {
        let v = parse("[1, 1.0, -2, 1e3]").unwrap();
        let a = v.as_array().unwrap();
        assert!(matches!(a[0], Value::Number(Number::UInt(1))));
        assert!(matches!(a[1], Value::Number(Number::Float(_))));
        assert!(matches!(a[2], Value::Number(Number::Int(-2))));
        assert_eq!(a[3].as_f64(), Some(1000.0));
    }

    #[test]
    fn float_emission_keeps_float_shape() {
        let mut s = String::new();
        emit_f64(10.0, &mut s);
        assert_eq!(s, "10.0");
        s.clear();
        emit_f64(0.25, &mut s);
        assert_eq!(s, "0.25");
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let v = parse(r#"{"rows":[{"x":1}]}"#).unwrap();
        let pretty = v.to_pretty_string();
        assert!(pretty.contains("\n  \"rows\""), "{pretty}");
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn escapes_and_unicode() {
        let v = parse(r#""Aé😀\t""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "Aé😀\t");
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
    }
}
