//! Offline stand-in for `parking_lot`: the non-poisoning `Mutex`/`RwLock`
//! API, implemented over `std::sync`. A poisoned std lock (panicked holder)
//! is recovered rather than propagated, matching parking_lot's behaviour
//! of not poisoning at all.

#![forbid(unsafe_code)]

use std::sync;

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock whose acquisition methods never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(vec![1, 2, 3]);
        let a = l.read();
        let b = l.read();
        assert_eq!(a.len() + b.len(), 6);
        drop((a, b));
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn poisoned_lock_is_recovered() {
        let m = Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
