//! Offline stand-in for `criterion`: same API shape
//! (`criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `bench_with_input`, `Bencher::iter`), but a
//! deliberately small wall-clock harness — each benchmark runs for a
//! bounded time budget and prints a single mean-per-iteration line.
//! No statistics, plots, or baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    max_iters: u64,
    budget: Duration,
    /// (iterations, total elapsed) recorded by the last `iter` call.
    result: Option<(u64, Duration)>,
}

impl Bencher {
    fn new(max_iters: u64, budget: Duration) -> Self {
        Bencher {
            max_iters,
            budget,
            result: None,
        }
    }

    /// Time `routine` repeatedly until the time budget or iteration cap
    /// is reached (always at least once).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up pass.
        let _ = routine();
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            let _ = std::hint::black_box(routine());
            iters += 1;
            if iters >= self.max_iters || start.elapsed() >= self.budget {
                break;
            }
        }
        self.result = Some((iters, start.elapsed()));
    }
}

fn report(label: &str, result: Option<(u64, Duration)>) {
    match result {
        Some((iters, total)) => {
            let per_iter = total.as_secs_f64() / iters as f64;
            let (scaled, unit) = if per_iter >= 1.0 {
                (per_iter, "s")
            } else if per_iter >= 1e-3 {
                (per_iter * 1e3, "ms")
            } else if per_iter >= 1e-6 {
                (per_iter * 1e6, "µs")
            } else {
                (per_iter * 1e9, "ns")
            };
            println!("bench {label:<50} {scaled:>10.3} {unit}/iter ({iters} iters)");
        }
        None => println!("bench {label:<50} (no measurement)"),
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: u64,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 50,
            budget: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size, self.budget);
        f(&mut b);
        report(name, b.result);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<u64>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Cap the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n as u64);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: String, mut f: F) {
        let max_iters = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut b = Bencher::new(max_iters, self.criterion.budget);
        f(&mut b);
        report(&format!("{}/{label}", self.name), b.result);
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    /// Run a plain benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.to_string(), |b| f(b));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_the_closure() {
        let mut c = Criterion {
            sample_size: 5,
            budget: Duration::from_millis(20),
        };
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| ran += 1);
        });
        assert!(ran > 0);
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut c = Criterion {
            sample_size: 50,
            budget: Duration::from_secs(5),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut iters = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(7), &2u64, |b, &two| {
            b.iter(|| iters += two);
        });
        group.finish();
        // 3 timed + 1 warm-up iterations, each adding two.
        assert_eq!(iters, 8);
    }
}
