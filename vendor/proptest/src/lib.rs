//! Offline stand-in for `proptest`, covering the subset this workspace
//! uses: the `proptest!` macro over `arg in <numeric range>` strategies,
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, and
//! `ProptestConfig::with_cases`.
//!
//! Cases are drawn from a deterministic RNG seeded by the test name, so
//! failures reproduce on every run. Rejected cases (`prop_assume!`) are
//! skipped rather than re-drawn, which for the reject rates in this
//! workspace (< 5 %) still leaves ample coverage. No shrinking: the
//! failing case's arguments are printed instead.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::Range;

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` was not satisfied; the case is skipped.
    Reject(String),
    /// `prop_assert!`/`prop_assert_eq!` failed; the test fails.
    Fail(String),
}

/// Per-property state: the deterministic case RNG.
pub struct TestRunner {
    rng: StdRng,
    cases: u32,
}

impl TestRunner {
    /// A runner for the property named `name`.
    pub fn new(config: &ProptestConfig, name: &str) -> Self {
        // FNV-1a of the test name: stable seed, distinct streams per test.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        TestRunner {
            rng: StdRng::seed_from_u64(h),
            cases: config.cases,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The case RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Value sources usable on the right of `arg in <strategy>`.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Draw one value for the current case.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;
}

macro_rules! range_strategy_impl {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                rand::RngExt::random_range(runner.rng(), self.clone())
            }
        }
    )*};
}

range_strategy_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// The common imports: the macros plus [`ProptestConfig`].
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig};
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
     $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strategy:expr ),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut runner = $crate::TestRunner::new(&config, concat!(module_path!(), "::", stringify!($name)));
                for case in 0..runner.cases() {
                    $( let $arg = $crate::Strategy::new_value(&($strategy), &mut runner); )*
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property {} failed at case {}:\n  {}\n  args: {}",
                                stringify!($name),
                                case,
                                msg,
                                format!(
                                    concat!($(stringify!($arg), " = {:?}; ",)*),
                                    $($arg),*
                                ),
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        fn assume_skips_cases(a in 0u32..10, b in 0u32..10) {
            prop_assume!(a != b);
            prop_assert!(a != b, "assume should have filtered {} == {}", a, b);
        }

        fn float_ranges_hold(x in 0.5f64..2.0) {
            prop_assert!((0.5..2.0).contains(&x));
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = ProptestConfig::with_cases(8);
        let mut r1 = crate::TestRunner::new(&cfg, "t");
        let mut r2 = crate::TestRunner::new(&cfg, "t");
        for _ in 0..32 {
            let a = crate::Strategy::new_value(&(0u64..1_000_000), &mut r1);
            let b = crate::Strategy::new_value(&(0u64..1_000_000), &mut r2);
            assert_eq!(a, b);
        }
    }
}
