//! Offline stand-in for `rand`, covering the surface this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `RngExt::random_range` over half-open integer and float ranges.
//!
//! `StdRng` here is xoshiro256++ seeded via SplitMix64 — deterministic
//! across platforms and runs, which is what every experiment and test in
//! the workspace relies on (the real `StdRng` makes no cross-version
//! stability promise anyway).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level uniform word source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a small seed.
pub trait SeedableRng: Sized {
    /// Deterministically expand `seed` into a full RNG state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// A uniform draw from a half-open range.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> RngExt for T {}

/// Ranges that know how to draw a uniform value from an RNG.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw one value. Panics if the range is empty.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> Self::Output;
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample from empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo draw; bias is negligible for the spans the
                // workspace uses (all far below 2^64).
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample from empty range {}..{}",
                    self.start,
                    self.end
                );
                // 53 (resp. 24) explicit mantissa bits -> unit in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = self.start + (self.end - self.start) * unit as $t;
                // Guard the half-open upper bound against rounding.
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}

float_range_impl!(f32, f64);

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Named RNG types.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::{RngCore, RngExt};

    /// Slice extensions: in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Uniformly permute the slice in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1 << 40), b.random_range(0u64..1 << 40));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let i = rng.random_range(3u32..17);
            assert!((3..17).contains(&i));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let s = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn tiny_float_lower_bound_is_respected() {
        // calibrate.rs draws from f64::EPSILON..1.0 and takes a log.
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let u = rng.random_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&u) && u.ln().is_finite());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random_range(0u64..u64::MAX) == b.random_range(0u64..u64::MAX))
            .count();
        assert!(same < 4);
    }
}
