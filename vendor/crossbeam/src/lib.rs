//! Offline stand-in for `crossbeam`: the two surfaces this workspace uses —
//! [`scope`] for scoped thread fan-out and [`channel`] for MPMC queues —
//! implemented over `std::thread::scope` and `Mutex` + `Condvar`.

#![forbid(unsafe_code)]

pub mod channel;

use std::thread;

/// Handle passed to [`scope`] closures; spawns threads that may borrow
/// from the enclosing scope.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

/// Join handle for a thread spawned via [`Scope::spawn`].
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the thread to finish, returning its result.
    pub fn join(self) -> thread::Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread inside the scope. The closure receives the scope
    /// handle (crossbeam's signature) so it can spawn nested threads.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let nested = Scope { inner: self.inner };
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&nested)),
        }
    }
}

/// Run `f` with a [`Scope`]; all spawned threads are joined before this
/// returns. Matches `crossbeam::scope`'s `Result` signature (a thread
/// panic surfaces as `Err` after every thread has been joined — here
/// `std::thread::scope` resumes the panic instead, so `Ok` on return).
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_borrows() {
        let data = vec![1u64, 2, 3, 4];
        let mut partial = vec![0u64; 2];
        super::scope(|s| {
            let (a, b) = partial.split_at_mut(1);
            let d = &data;
            let ha = s.spawn(move |_| a[0] = d[..2].iter().sum());
            let hb = s.spawn(move |_| b[0] = d[2..].iter().sum());
            ha.join().unwrap();
            hb.join().unwrap();
        })
        .unwrap();
        assert_eq!(partial, vec![3, 7]);
    }
}
