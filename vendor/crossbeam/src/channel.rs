//! MPMC channels: `bounded` / `unbounded`, cloneable senders *and*
//! receivers, with disconnect detection once all handles on the other
//! side are dropped. Built on `Mutex<VecDeque>` + two `Condvar`s.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are gone.
/// Carries the unsent message back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Sender::try_send`].
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity; the message is handed back.
    Full(T),
    /// All receivers are gone; the message is handed back.
    Disconnected(T),
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "sending on a full channel"),
            TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
        }
    }
}

/// Error returned by [`Receiver::recv`]: the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message ready right now.
    Empty,
    /// Channel empty and all senders gone.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the deadline.
    Timeout,
    /// Channel empty and all senders gone.
    Disconnected,
}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    cap: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Shared<T> {
    fn new(cap: Option<usize>) -> Arc<Self> {
        Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        match self.queue.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

/// The sending half of a channel. Cloneable; the channel disconnects for
/// receivers when the last clone drops.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Cloneable (MPMC); each message is
/// delivered to exactly one receiver.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// A channel holding at most `cap` in-flight messages; `send` blocks and
/// `try_send` returns [`TrySendError::Full`] when at capacity.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Shared::new(Some(cap));
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

/// A channel with no capacity limit; `send` never blocks.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Shared::new(None);
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender: wake blocked receivers so they observe the
            // disconnect instead of sleeping forever.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> Sender<T> {
    fn disconnected(&self) -> bool {
        self.shared.receivers.load(Ordering::SeqCst) == 0
    }

    /// Send, blocking while the channel is full. Errors only when all
    /// receivers are gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut queue = self.shared.lock();
        loop {
            if self.disconnected() {
                return Err(SendError(msg));
            }
            match self.shared.cap {
                Some(cap) if queue.len() >= cap => {
                    queue = match self.shared.not_full.wait(queue) {
                        Ok(g) => g,
                        Err(p) => p.into_inner(),
                    };
                }
                _ => break,
            }
        }
        queue.push_back(msg);
        drop(queue);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Send without blocking; `Full` carries the message back when the
    /// channel is at capacity.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut queue = self.shared.lock();
        if self.disconnected() {
            return Err(TrySendError::Disconnected(msg));
        }
        if let Some(cap) = self.shared.cap {
            if queue.len() >= cap {
                return Err(TrySendError::Full(msg));
            }
        }
        queue.push_back(msg);
        drop(queue);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.shared.lock().is_empty()
    }
}

impl<T> Receiver<T> {
    fn no_senders(&self) -> bool {
        self.shared.senders.load(Ordering::SeqCst) == 0
    }

    /// Receive, blocking until a message arrives or every sender drops.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.lock();
        loop {
            if let Some(msg) = queue.pop_front() {
                drop(queue);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if self.no_senders() {
                return Err(RecvError);
            }
            queue = match self.shared.not_empty.wait(queue) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    /// Receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.shared.lock();
        if let Some(msg) = queue.pop_front() {
            drop(queue);
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if self.no_senders() {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Receive, blocking at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.shared.lock();
        loop {
            if let Some(msg) = queue.pop_front() {
                drop(queue);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if self.no_senders() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) =
                match self.shared.not_empty.wait_timeout(queue, deadline - now) {
                    Ok(r) => r,
                    Err(p) => p.into_inner(),
                };
            queue = guard;
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.shared.lock().is_empty()
    }

    /// Blocking iterator: yields until the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

/// Iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn recv_sees_disconnect_after_drain() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn mpmc_delivers_each_message_once() {
        let (tx, rx) = bounded::<u64>(8);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || rx.iter().sum::<u64>())
            })
            .collect();
        drop(rx);
        for i in 1..=100u64 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: u64 = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 5050);
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = bounded::<u32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(1).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(1));
    }

    #[test]
    fn send_blocks_until_capacity_frees() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let h = thread::spawn(move || {
            tx.send(2).unwrap();
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        h.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }
}
